package testcases

import (
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// EPYC-class server CPU modeled after the AMD chiplet architecture the
// paper cites as the commercial proof point of technology mix-and-match
// (Naffziger et al. [10]): up to eight compute chiplets (CCDs) in an
// advanced node around one IO die (IOD) in a mature node, on an organic
// RDL substrate. This testcase exercises the many-chiplet regime the
// GA102/A15/EMR set does not cover.
const (
	// EPYCCCDMM2 is one CCD's area at the 7 nm reference.
	EPYCCCDMM2 = 74.0
	// EPYCIODMM2 is the IO die's area at its 14 nm home node (it is
	// IO/analog-dominated and deliberately kept on a mature node).
	EPYCIODMM2 = 416.0
)

// EPYCOperation is a profiled server operating point: a multi-state
// usage profile (compute-heavy days, idle nights) over a 5-year life.
var EPYCOperation = opcarbon.Profile{Phases: []opcarbon.Phase{
	{Name: "busy", ShareOfYear: 0.35, PowerW: 225},
	{Name: "idle", ShareOfYear: 0.55, PowerW: 70},
	{Name: "off", ShareOfYear: 0.10, PowerW: 0},
}}

// EPYC builds the server CPU with the given CCD count (1-8). The CCDs
// are marked reused: the same compute die ships across the whole product
// stack and multiple generations, which is the design style's point.
func EPYC(db *tech.DB, ccds int) (*core.System, error) {
	if ccds < 1 || ccds > 8 {
		return nil, fmt.Errorf("testcases: EPYC CCD count %d outside [1, 8]", ccds)
	}
	ref7 := refNode(db, 7)
	ref14 := refNode(db, 14)
	chiplets := make([]core.Chiplet, 0, ccds+1)
	for i := 0; i < ccds; i++ {
		ccd := core.BlockFromArea(fmt.Sprintf("ccd%d", i), tech.Logic, EPYCCCDMM2, ref7, 7)
		ccd.Reused = true
		// One CCD design serves every SKU: its volume is the whole
		// product line's CCD consumption.
		ccd.ManufacturedParts = 8 * core.DefaultVolume
		chiplets = append(chiplets, ccd)
	}
	iod := core.BlockFromArea("iod", tech.Analog, EPYCIODMM2, ref14, 14)
	chiplets = append(chiplets, iod)

	spec, err := opcarbon.SpecFromProfile(EPYCOperation, 5, 0.45)
	if err != nil {
		return nil, err
	}
	return &core.System{
		Name:      fmt.Sprintf("EPYC-%dccd", ccds),
		Chiplets:  chiplets,
		Packaging: pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:       mfg.DefaultParams(),
		Design:    defaultDesign(),
		Operation: &spec,
	}, nil
}

// EPYCMonolith builds the hypothetical monolithic equivalent: all CCD
// logic plus the IO die's functionality on one giant 7 nm die.
func EPYCMonolith(db *tech.DB, ccds int) (*core.System, error) {
	if ccds < 1 || ccds > 8 {
		return nil, fmt.Errorf("testcases: EPYC CCD count %d outside [1, 8]", ccds)
	}
	ref7 := refNode(db, 7)
	ref14 := refNode(db, 14)
	chiplets := make([]core.Chiplet, 0, ccds+1)
	for i := 0; i < ccds; i++ {
		chiplets = append(chiplets,
			core.BlockFromArea(fmt.Sprintf("ccd%d", i), tech.Logic, EPYCCCDMM2, ref7, 7))
	}
	// The IO block keeps its transistor budget but must now be built in
	// the advanced node alongside the logic.
	io := core.Chiplet{
		Name: "io", Type: tech.Analog,
		Transistors: ref14.Transistors(tech.Analog, EPYCIODMM2),
		NodeNm:      7,
	}
	chiplets = append(chiplets, io)

	spec, err := opcarbon.SpecFromProfile(EPYCOperation, 5, 0.45)
	if err != nil {
		return nil, err
	}
	return &core.System{
		Name:       fmt.Sprintf("EPYC-monolith-%dccd", ccds),
		Chiplets:   chiplets,
		Monolithic: true,
		Mfg:        mfg.DefaultParams(),
		Design:     defaultDesign(),
		Operation:  &spec,
	}, nil
}

// Package lru is the serving layer's shared plan cache: a size-bounded
// LRU keyed by content-hash strings, with single-flight builds so that
// concurrent requests for the same key share one (expensive) compile
// instead of racing N of them. It backs both `internal/serve`'s
// compiled-plan caches and the replica-side `shard.Catalog`.
//
// The cache stores immutable values (compiled plans are concurrent-safe
// and never mutated), so eviction is purely a residency decision: an
// evicted value that is still referenced by an in-flight request stays
// alive and correct, and a later request for its key simply rebuilds it
// from the same content key — deterministically, by construction of the
// keys (see explore.PlanKey).
package lru

import (
	"container/list"
	"sync"
)

// Stats are the cache's monotone counters. Hits+Misses+Coalesced is the
// total number of GetOrBuild calls; Builds counts builder invocations
// (successful or not); Evictions counts completed entries dropped to
// honour the capacity bound.
type Stats struct {
	// Hits is the number of lookups served from a resident value.
	Hits uint64
	// Misses is the number of lookups that started a build.
	Misses uint64
	// Coalesced is the number of lookups that joined another caller's
	// in-flight build instead of starting their own (the single-flight
	// savings: each one is a compile that did not happen).
	Coalesced uint64
	// Builds is the number of builder invocations (Misses, minus
	// nothing: every miss builds; failed builds are not cached, so a
	// later retry counts as a fresh miss).
	Builds uint64
	// Evictions is the number of completed entries evicted for
	// capacity.
	Evictions uint64
}

// entry is one cache slot. ready is closed when the build completes;
// until then the entry is "in flight": resident in the map (so later
// callers coalesce onto it) but not on the recency list (so it cannot
// be evicted out from under its waiters).
type entry[V any] struct {
	ready chan struct{}
	val   V
	err   error
	elem  *list.Element // nil while in flight or after eviction
}

// Cache is a single-flight LRU from string keys to values of type V.
// All methods are safe for concurrent use. The zero value is not valid;
// use New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int // <= 0 means unbounded
	entries  map[string]*entry[V]
	recency  *list.List // front = most recent; values are string keys
	stats    Stats
}

// New returns a cache holding at most capacity completed values;
// capacity <= 0 means unbounded. In-flight builds never count against
// the bound (they are pinned until they complete).
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		entries:  make(map[string]*entry[V]),
		recency:  list.New(),
	}
}

// GetOrBuild returns the value for key, invoking build to create it on
// a miss. Concurrent callers with the same key share a single build:
// exactly one runs the builder (outside the cache lock), the rest block
// until it settles and receive the same value or error. A failed build
// is not cached — every waiter gets the error, the slot is cleared, and
// the next caller retries from scratch.
func (c *Cache[V]) GetOrBuild(key string, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			// Completed entry: a plain hit.
			c.recency.MoveToFront(e.elem)
			c.stats.Hits++
			c.mu.Unlock()
			return e.val, e.err
		}
		// In flight: join the running build.
		c.stats.Coalesced++
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &entry[V]{ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.stats.Builds++
	c.mu.Unlock()

	e.val, e.err = build()

	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		e.elem = c.recency.PushFront(key)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return e.val, e.err
}

// Get returns the resident value for key without building, reporting
// whether it was found. In-flight builds do not count as resident (Get
// never blocks).
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.elem != nil {
		c.recency.MoveToFront(e.elem)
		c.stats.Hits++
		return e.val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// evictLocked drops least-recently-used completed entries until the
// capacity bound holds. Callers hold c.mu.
func (c *Cache[V]) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for c.recency.Len() > c.capacity {
		back := c.recency.Back()
		key := back.Value.(string)
		c.recency.Remove(back)
		c.entries[key].elem = nil
		delete(c.entries, key)
		c.stats.Evictions++
	}
}

// Len reports the number of completed resident entries (in-flight
// builds excluded).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recency.Len()
}

// Capacity reports the configured bound (<= 0 means unbounded).
func (c *Cache[V]) Capacity() int { return c.capacity }

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

package floorplan

import (
	"fmt"
	"testing"
)

func benchBlocks(n int) []Block {
	blocks := make([]Block, n)
	for i := range blocks {
		blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: float64(20 + 13*i%200)}
	}
	return blocks
}

func BenchmarkPlan8(b *testing.B) {
	blocks := benchBlocks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(blocks, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlan32(b *testing.B) {
	blocks := benchBlocks(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(blocks, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanFlexible8(b *testing.B) {
	blocks := benchBlocks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanFlexible(blocks, 0.5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTreeUpdate measures the retained-tree single-area fast path: the
// per-Gray-step floorplan cost of a compiled sweep. Perturbing the
// globally smallest block keeps the topology provably stable — it is
// last in every partition sequence, so every decision depends only on
// the unchanged predecessors — and the benchmark asserts no rebuild
// sneaked in.
func benchTreeUpdate(b *testing.B, n int) {
	b.Helper()
	blocks := benchBlocks(n)
	smallest := 0
	for i, blk := range blocks {
		if blk.AreaMM2 < blocks[smallest].AreaMM2 {
			smallest = i
		}
	}
	var tr Tree
	if _, err := tr.PlanNoAdjacencies(blocks, 0.5); err != nil {
		b.Fatal(err)
	}
	base := blocks[smallest].AreaMM2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Update(smallest, base-float64(i&1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := tr.Stats(); s.Fallbacks > 0 {
		b.Fatalf("update benchmark fell back to rebuilds: %+v", s)
	}
}

func BenchmarkTreeUpdate8(b *testing.B)  { benchTreeUpdate(b, 8) }
func BenchmarkTreeUpdate32(b *testing.B) { benchTreeUpdate(b, 32) }

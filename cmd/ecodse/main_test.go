package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecochip/internal/config"
)

func exampleDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := config.WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunSweepMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), "sweep", 0.25, 100, 1, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Pareto front") {
		t.Errorf("sweep output missing front:\n%s", out.String())
	}
}

func TestRunTornadoMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), "tornado", 0.25, 100, 1, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "swing_kg") {
		t.Errorf("tornado output missing swing column:\n%s", out.String())
	}
}

func TestRunGroupMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), "group", 0.25, 100, 1, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embodied carbon:") {
		t.Errorf("group output missing summary:\n%s", out.String())
	}
}

func TestRunMCMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), "mc", 0.25, 50, 1, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relative_spread") {
		t.Errorf("mc output missing distribution:\n%s", out.String())
	}
}

func TestRunBadMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), "magic", 0.25, 100, 1, &out, nil); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestRunMissingDir(t *testing.T) {
	var out strings.Builder
	if err := run(t.TempDir(), "sweep", 0.25, 100, 1, &out, nil); err == nil {
		t.Error("empty design dir should fail")
	}
}

func TestSweepNeedsNodeList(t *testing.T) {
	dir := exampleDir(t)
	// Remove the node list.
	if err := removeNodeList(dir); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(dir, "sweep", 0.25, 100, 1, &out, nil); err == nil {
		t.Error("sweep without node_list.txt should fail")
	}
}

// removeNodeList deletes node_list.txt from a design dir.
func removeNodeList(dir string) error {
	return os.Remove(filepath.Join(dir, "node_list.txt"))
}

package explore

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
)

// PlanKey derives the stable identity of the compiled sweep of (base,
// db, nodes, cp): two parties that agree on the key are guaranteed to
// compile bit-identical plans, which is what lets a distributed shard
// replica compile locally from the key instead of receiving the plan
// over the wire. The key hashes a canonical JSON encoding of the system
// description, the candidate node list, the cost parameters and every
// node record of the database (in sorted node order, so map iteration
// can never perturb it). It is a content fingerprint, not a
// cryptographic commitment: collisions between adversarially crafted
// systems are out of scope, honest version skew (a changed defect
// density, a re-calibrated mask cost) reliably changes the key.
func PlanKey(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (string, error) {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	// encoding/json sorts map keys and follows pointers, so each write
	// is deterministic in the value's content alone.
	if err := enc.Encode(base); err != nil {
		return "", fmt.Errorf("explore: plan key system encoding: %w", err)
	}
	if err := enc.Encode(nodes); err != nil {
		return "", fmt.Errorf("explore: plan key node-list encoding: %w", err)
	}
	if err := enc.Encode(cp); err != nil {
		return "", fmt.Errorf("explore: plan key cost-params encoding: %w", err)
	}
	sizes := db.Sizes()
	if err := enc.Encode(sizes); err != nil {
		return "", fmt.Errorf("explore: plan key db-sizes encoding: %w", err)
	}
	for _, nm := range sizes {
		n, err := db.Get(nm)
		if err != nil {
			return "", err
		}
		if err := enc.Encode(n); err != nil {
			return "", fmt.Errorf("explore: plan key node %dnm encoding: %w", nm, err)
		}
	}
	return fmt.Sprintf("sweep-%016x", h.Sum64()), nil
}

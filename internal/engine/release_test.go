package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"ecochip/internal/core"
)

// Every scratch a worker built must be released exactly once, on
// success, on task failure and on cancellation — the contract a
// step-spanning scratch pool depends on.
func TestRunScratchReleaseReturnsEveryScratch(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var mu sync.Mutex
		built, released := 0, 0
		newScratch := func(_ *core.Hooks) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			built++
			return built, nil
		}
		release := func(int) {
			mu.Lock()
			defer mu.Unlock()
			released++
		}

		_, err := RunScratchRelease(context.Background(), 20, newScratch, release,
			func(_ context.Context, i int, _ int) (int, error) { return i, nil },
			WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		if built == 0 || released != built {
			t.Fatalf("workers=%d: released %d of %d scratches", workers, released, built)
		}
		mu.Unlock()

		sentinel := errors.New("boom")
		_, err = RunScratchRelease(context.Background(), 20, newScratch, release,
			func(_ context.Context, i int, _ int) (int, error) {
				if i == 3 {
					return 0, sentinel
				}
				return i, nil
			}, WithWorkers(workers))
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		mu.Lock()
		if released != built {
			t.Fatalf("workers=%d: after failure released %d of %d scratches", workers, released, built)
		}
		mu.Unlock()
	}
}

// A nil release hook is the plain RunScratch behavior.
func TestRunScratchReleaseNilHook(t *testing.T) {
	got, err := RunScratchRelease(context.Background(), 5,
		func(_ *core.Hooks) (struct{}, error) { return struct{}{}, nil },
		nil,
		func(_ context.Context, i int, _ struct{}) (int, error) { return i + 1, nil },
		WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}

package act

import (
	"math"
	"testing"

	"ecochip/internal/tech"
	"ecochip/internal/yieldmodel"
)

func n7() *tech.Node { return tech.Default().MustGet(7) }

func TestDieKgKnownValue(t *testing.T) {
	// 100 mm^2 at 7nm: cfpa = (0.7*3.5 + 0.4 + 0.5)/Y, area 1 cm^2.
	y := yieldmodel.Die(100, n7().DefectDensity)
	want := (0.7*3.5 + 0.4 + 0.5) / y
	got, err := DieKg(Die{AreaMM2: 100, Node: n7()}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DieKg = %g, want %g", got, want)
	}
}

func TestSystemKgAddsFixedPackage(t *testing.T) {
	d := Die{AreaMM2: 100, Node: n7()}
	one, err := DieKg(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := SystemKg([]Die{d, d}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys-(2*one+FixedPackageKg)) > 1e-9 {
		t.Errorf("SystemKg = %g, want %g", sys, 2*one+FixedPackageKg)
	}
}

// ACT's package term is constant: it does not grow with package area or
// chiplet count beyond the dies themselves — the inaccuracy Fig. 7(c)
// highlights.
func TestFixedPackageRegardlessOfCount(t *testing.T) {
	mk := func(count int) float64 {
		dies := make([]Die, count)
		for i := range dies {
			dies[i] = Die{AreaMM2: 300 / float64(count), Node: n7()}
		}
		sys, err := SystemKg(dies, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var diesOnly float64
		for _, d := range dies {
			kg, _ := DieKg(d, DefaultParams())
			diesOnly += kg
		}
		return sys - diesOnly
	}
	if p2, p6 := mk(2), mk(6); math.Abs(p2-p6) > 1e-9 || math.Abs(p2-FixedPackageKg) > 1e-9 {
		t.Errorf("ACT package term must be fixed at %g, got %g and %g", FixedPackageKg, p2, p6)
	}
}

// ACT must sit below the ECO-CHIP formulation for the same die because it
// omits the wafer-wastage term and adds only 150 g for packaging. We
// check the ingredient property here (no derate means *higher* energy
// term but no wastage and tiny package) and leave the full system
// comparison to the integration tests.
func TestNoEquipmentDerate(t *testing.T) {
	// ACT applies no eta_eq derate: its energy term is Csrc*EPA, not
	// eta_eq*Csrc*EPA. At 7nm eta_eq = 1.0 so the per-area values agree.
	n := n7()
	y := yieldmodel.Die(100, n.DefectDensity)
	got, err := DieKg(Die{AreaMM2: 100, Node: n}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ecoLike := (n.EquipEfficiency*0.7*n.EPA + n.GasCFP + n.MaterialCFP) / y
	if math.Abs(got-ecoLike) > 1e-9 {
		t.Errorf("at 7nm (eta_eq=1) ACT and ECO die CFP should coincide: %g vs %g", got, ecoLike)
	}
	// At 65nm eta_eq = 0.6, so ACT over-counts the energy term.
	n65 := tech.Default().MustGet(65)
	act65, err := DieKg(Die{AreaMM2: 100, Node: n65}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	y65 := yieldmodel.Die(100, n65.DefectDensity)
	eco65 := (n65.EquipEfficiency*0.7*n65.EPA + n65.GasCFP + n65.MaterialCFP) / y65
	if act65 <= eco65 {
		t.Errorf("ACT at 65nm (%g) should exceed the derated ECO formulation (%g)", act65, eco65)
	}
}

func TestErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := DieKg(Die{AreaMM2: 0, Node: n7()}, p); err == nil {
		t.Error("zero area should fail")
	}
	if _, err := DieKg(Die{AreaMM2: 100}, p); err == nil {
		t.Error("nil node should fail")
	}
	if _, err := SystemKg(nil, p); err == nil {
		t.Error("empty system should fail")
	}
	bad := p
	bad.CarbonIntensity = 9
	if _, err := DieKg(Die{AreaMM2: 100, Node: n7()}, bad); err == nil {
		t.Error("bad intensity should fail")
	}
	bad = p
	bad.Alpha = 0
	if _, err := DieKg(Die{AreaMM2: 100, Node: n7()}, bad); err == nil {
		t.Error("bad alpha should fail")
	}
	if _, err := SystemKg([]Die{{AreaMM2: -1, Node: n7()}}, p); err == nil {
		t.Error("bad die inside system should fail")
	}
}

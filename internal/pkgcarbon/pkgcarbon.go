// Package pkgcarbon implements the HI-oriented carbon overheads of
// Section III-D of the ECO-CHIP paper: the packaging-architecture models
// (Eqs. (9)-(11)), the inter-die communication overheads (routers and
// PHYs), and the whitespace-aware package/interposer area estimation
// built on the slicing floorplanner.
//
// Five packaging architectures are modeled:
//
//	RDLFanout         - chiplets on an epoxy-molding-compound substrate
//	                    with L_RDL patterned redistribution layers.
//	SiliconBridge     - EMIB/LSI-style local high-density bridges embedded
//	                    in an organic substrate; one or more bridges per
//	                    adjacent chiplet pair, ceil(overlap/range) each.
//	PassiveInterposer - a BEOL-only silicon die spanning the whole
//	                    package; NoC routers live inside the chiplets.
//	ActiveInterposer  - a silicon die with BEOL across the full area plus
//	                    local FEOL regions hosting the NoC routers.
//	ThreeD            - stacked tiers bonded by a dense grid of TSVs,
//	                    microbumps or hybrid bonds at minimum pitch.
package pkgcarbon

import (
	"fmt"
	"math"

	"ecochip/internal/floorplan"
	"ecochip/internal/noc"
	"ecochip/internal/tech"
	"ecochip/internal/yieldmodel"
)

// Architecture selects the packaging/integration technology.
type Architecture int

const (
	// RDLFanout is fanout packaging with RDL metal layers (Fig. 4a).
	RDLFanout Architecture = iota
	// SiliconBridge is EMIB/LSI-style bridge integration (Fig. 4b).
	SiliconBridge
	// PassiveInterposer is TSV-based 2.5D with a metal-only interposer
	// (Fig. 4c).
	PassiveInterposer
	// ActiveInterposer is 2.5D with FEOL logic in the interposer
	// (Fig. 4c).
	ActiveInterposer
	// ThreeD is chiplet stacking with TSVs/microbumps/hybrid bonds
	// (Fig. 4d).
	ThreeD
)

// Architectures lists all supported architectures in display order.
var Architectures = []Architecture{RDLFanout, SiliconBridge, PassiveInterposer, ActiveInterposer, ThreeD}

// String returns the canonical name used in reports.
func (a Architecture) String() string {
	switch a {
	case RDLFanout:
		return "RDL"
	case SiliconBridge:
		return "EMIB"
	case PassiveInterposer:
		return "passive-interposer"
	case ActiveInterposer:
		return "active-interposer"
	case ThreeD:
		return "3D"
	}
	return fmt.Sprintf("Architecture(%d)", int(a))
}

// ParseArchitecture accepts the JSON spellings of the released tool.
func ParseArchitecture(s string) (Architecture, error) {
	switch s {
	case "RDL", "rdl", "fanout", "RDL-fanout":
		return RDLFanout, nil
	case "EMIB", "emib", "bridge", "silicon-bridge":
		return SiliconBridge, nil
	case "passive", "passive-interposer", "2.5D-passive":
		return PassiveInterposer, nil
	case "active", "active-interposer", "2.5D-active":
		return ActiveInterposer, nil
	case "3D", "3d", "stacked":
		return ThreeD, nil
	}
	return 0, fmt.Errorf("pkgcarbon: unknown packaging architecture %q", s)
}

// BondType selects the vertical interconnect of 3D stacks.
type BondType int

const (
	// TSV is a through-silicon via (face-to-back stacking).
	TSV BondType = iota
	// Microbump is a face-to-face microbump.
	Microbump
	// HybridBond is direct Cu-Cu hybrid bonding.
	HybridBond
)

// String names the bond type.
func (b BondType) String() string {
	switch b {
	case TSV:
		return "TSV"
	case Microbump:
		return "microbump"
	case HybridBond:
		return "hybrid-bond"
	}
	return fmt.Sprintf("BondType(%d)", int(b))
}

// Default per-bond patterning energies in kWh. TSVs require deep etch and
// fill, microbumps plating and reflow, hybrid bonds only surface
// preparation amortized over a huge count.
const (
	EnergyPerTSVKWh    = 3e-6
	EnergyPerBumpKWh   = 2e-6
	EnergyPerHybridKWh = 5e-8
)

// Params bundles every packaging knob with Table I defaults.
type Params struct {
	Arch Architecture

	// PackagingNode is the node of the RDL / bridge / interposer
	// patterning (Table I: 22 - 65 nm; the paper's experiments use 65 nm).
	PackagingNode *tech.Node

	// CarbonIntensity is C_pkg,src in kg CO2/kWh.
	CarbonIntensity float64

	// SpacingMM is the chiplet spacing constraint for the floorplanner.
	SpacingMM float64

	// FlexibleFloorplan lets chiplets take non-square aspect ratios
	// during floorplanning (shape-curve sizing), which can only shrink
	// the package area. Off by default: the paper's experiments assume
	// fixed square dies.
	FlexibleFloorplan bool

	// RDLLayers is L_RDL (Table I: 3 - 9).
	RDLLayers int

	// BridgeLayers is L_bridge (Table I: 3 - 4).
	BridgeLayers int
	// BridgeRangeMM is the reach of one silicon bridge along a shared
	// edge (EMIB spec: 2 mm).
	BridgeRangeMM float64
	// BridgeAreaMM2 is the silicon area of one bridge (EMIB spec:
	// 2x2 mm^2).
	BridgeAreaMM2 float64
	// BridgeEmbedEnergyKWh is the cavity-milling/placement energy of
	// embedding one bridge in the substrate.
	BridgeEmbedEnergyKWh float64

	// InterposerBEOLLayers is the metal-layer count of 2.5D interposers.
	InterposerBEOLLayers int

	// AttachEnergyKWhPerChiplet is the assembly energy of placing and
	// bonding one chiplet onto a 2D substrate/interposer (pick-and-
	// place, reflow, underfill). It is the per-die term that makes
	// C_HI grow with chiplet count in Fig. 10. 3D stacks carry their
	// assembly energy in the bond-grid term instead.
	AttachEnergyKWhPerChiplet float64

	// Bond selects the 3D vertical interconnect.
	Bond BondType
	// BondPitchUM is the TSV/microbump/hybrid-bond pitch (Table I:
	// TSV and microbump 10 - 45 um, hybrid 1 - 10 um).
	BondPitchUM float64
	// EnergyPerBondKWh overrides the per-bond energy; 0 selects the
	// default for the bond type.
	EnergyPerBondKWh float64

	// Router is the NoC router microarchitecture for interposer/3D
	// communication; PHY interfaces for RDL/EMIB derive from the same
	// config.
	Router noc.Config
	// RouterPower is the operating point for router power estimation.
	RouterPower noc.PowerParams
}

// DefaultParams returns the paper's experimental configuration for the
// given architecture: 65 nm packaging node, coal-powered packaging fab,
// EMIB-spec bridges, 35 um TSV/bump pitch (5 um hybrid), 512-bit routers.
func DefaultParams(arch Architecture) Params {
	p := Params{
		Arch:                      arch,
		PackagingNode:             tech.Default().MustGet(65),
		CarbonIntensity:           0.700,
		SpacingMM:                 floorplan.DefaultSpacingMM,
		RDLLayers:                 6,
		BridgeLayers:              4,
		BridgeRangeMM:             2,
		BridgeAreaMM2:             4,
		BridgeEmbedEnergyKWh:      0.2,
		InterposerBEOLLayers:      4,
		AttachEnergyKWhPerChiplet: 0.3,
		Bond:                      Microbump,
		BondPitchUM:               35,
		Router:                    noc.DefaultConfig(),
		RouterPower:               noc.DefaultPowerParams(),
	}
	if arch == ThreeD {
		p.Bond = Microbump
	}
	return p
}

// Validate enforces the Table I parameter ranges.
func (p Params) Validate() error {
	if p.PackagingNode == nil {
		return fmt.Errorf("pkgcarbon: packaging node is required")
	}
	if p.PackagingNode.Nm < 22 || p.PackagingNode.Nm > 65 {
		return fmt.Errorf("pkgcarbon: packaging node %dnm outside Table I range [22, 65]", p.PackagingNode.Nm)
	}
	if p.CarbonIntensity < 0.030 || p.CarbonIntensity > 0.700 {
		return fmt.Errorf("pkgcarbon: carbon intensity %g outside [0.030, 0.700]", p.CarbonIntensity)
	}
	if p.RDLLayers < 3 || p.RDLLayers > 9 {
		return fmt.Errorf("pkgcarbon: RDL layers %d outside Table I range [3, 9]", p.RDLLayers)
	}
	if p.BridgeLayers < 3 || p.BridgeLayers > 4 {
		return fmt.Errorf("pkgcarbon: bridge layers %d outside Table I range [3, 4]", p.BridgeLayers)
	}
	if p.BridgeRangeMM <= 0 || p.BridgeAreaMM2 <= 0 {
		return fmt.Errorf("pkgcarbon: bridge range and area must be positive")
	}
	if p.BridgeEmbedEnergyKWh < 0 {
		return fmt.Errorf("pkgcarbon: bridge embed energy must be non-negative")
	}
	if p.InterposerBEOLLayers < 1 || p.InterposerBEOLLayers > 12 {
		return fmt.Errorf("pkgcarbon: interposer BEOL layers %d outside [1, 12]", p.InterposerBEOLLayers)
	}
	if p.AttachEnergyKWhPerChiplet < 0 {
		return fmt.Errorf("pkgcarbon: attach energy must be non-negative")
	}
	switch p.Bond {
	case TSV, Microbump:
		if p.BondPitchUM < 10 || p.BondPitchUM > 45 {
			return fmt.Errorf("pkgcarbon: %s pitch %g um outside Table I range [10, 45]", p.Bond, p.BondPitchUM)
		}
	case HybridBond:
		if p.BondPitchUM < 1 || p.BondPitchUM > 10 {
			return fmt.Errorf("pkgcarbon: hybrid-bond pitch %g um outside Table I range [1, 10]", p.BondPitchUM)
		}
	default:
		return fmt.Errorf("pkgcarbon: unknown bond type %v", p.Bond)
	}
	return p.Router.Validate()
}

func (p Params) energyPerBond() float64 {
	if p.EnergyPerBondKWh > 0 {
		return p.EnergyPerBondKWh
	}
	switch p.Bond {
	case TSV:
		return EnergyPerTSVKWh
	case Microbump:
		return EnergyPerBumpKWh
	default:
		return EnergyPerHybridKWh
	}
}

// Chiplet is one die to be packaged. Node is the chiplet's own process,
// used to size in-chiplet routers (passive interposer) and PHYs
// (RDL/EMIB).
type Chiplet struct {
	Name    string
	AreaMM2 float64
	Node    *tech.Node
}

// Result is the C_HI breakdown of one packaged system.
type Result struct {
	Arch Architecture

	// PackageAreaMM2 is the substrate/interposer area (3D: the stack
	// footprint).
	PackageAreaMM2 float64
	// WhitespaceMM2 is package area minus chiplet area (3D: 0).
	WhitespaceMM2 float64
	// Floorplan is the placement (nil for 3D stacks).
	Floorplan *floorplan.Result

	// NumBridges is the silicon-bridge count (EMIB only).
	NumBridges int
	// NumBonds is the TSV/bump/bond count (3D only).
	NumBonds float64
	// AssemblyYield is the package-level yield divisor.
	AssemblyYield float64

	// PackageKg is C_package in kg CO2.
	PackageKg float64
	// RoutingKg is C_mfg,comm: the carbon of routers or PHYs.
	RoutingKg float64

	// RouterAreaPerChipletMM2 is the NoC area implemented inside each
	// chiplet (passive interposer, and PHYs for RDL/EMIB). For active
	// interposers this is zero: routers live in the interposer.
	RouterAreaPerChipletMM2 float64
	// RouterTotalPowerW is the added inter-die communication power,
	// fed into the operational-carbon model.
	RouterTotalPowerW float64
}

// TotalKg returns C_HI = C_package + C_mfg,comm in kg CO2.
func (r *Result) TotalKg() float64 { return r.PackageKg + r.RoutingKg }

// Estimate computes the HI carbon overheads for the chiplet set under the
// given parameters. For non-3D architectures the chiplets are floorplanned
// side by side; for ThreeD they are treated as stacked tiers in the given
// order.
func Estimate(chiplets []Chiplet, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return estimateWith(chiplets, &p, nil)
}

// Estimator evaluates many chiplet sets under one fixed parameter set
// with the parameters validated once at construction and every reusable
// buffer — the retained floorplan tree, the Result, and a per-node memo
// of the pure communication sub-results (PHY/router area, carbon,
// power) — retained across calls. It is the packaging backend of
// compiled design-space sweep plans, whose hot loop would otherwise
// spend most of its time re-validating an unchanged Params and
// re-allocating identical intermediate storage.
//
// The floorplanner behind Estimate is a floorplan.Tree: when successive
// calls differ only in block areas, the plan is served by an
// incremental relayout of the dirty leaf-to-root paths (bit-identical
// to a from-scratch plan by the tree's guard), and EstimateDelta is the
// explicit single-changed-chiplet seam a Gray-code sweep step uses.
//
// An Estimator is NOT safe for concurrent use; give each worker its own.
// The Result returned by Estimate (including its Floorplan) is owned by
// the Estimator and overwritten by the next call; for non-bridge
// architectures the Floorplan carries only the bounding box and totals
// (nil Placements and Adjacencies), which is all any non-bridge model
// consumes — use the package-level Estimate when placements are needed
// for rendering.
type Estimator struct {
	p  Params
	sc scratch
}

// NewEstimator validates the parameters once and returns a reusable
// estimator for them.
func NewEstimator(p Params) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{p: p, sc: scratch{comm: make(map[*tech.Node]commCell)}}, nil
}

// Estimate is pkgcarbon.Estimate under the estimator's pre-validated
// parameters; the result is bit-identical to the package-level call.
func (e *Estimator) Estimate(chiplets []Chiplet) (*Result, error) {
	return estimateWith(chiplets, &e.p, &e.sc)
}

// EstimateDelta is Estimate when only chiplets[changed] differs (in
// area and/or node) from the chiplet set of the previous call on this
// estimator — the Gray-step shape of a compiled sweep walk. The
// floorplan goes through the retained tree's single-block update (the
// shape-curve FlexTree for flexible floorplans), the adjacency scan
// (bridge architectures) is restricted to moved rectangles, and the
// communication cells of unchanged chiplets are served from the
// per-chiplet cache; everything is bit-identical to a full Estimate by
// construction. When the precondition cannot be verified cheaply (first
// call, different chiplet count or names, 3D stacks), it falls back to
// the full Estimate.
func (e *Estimator) EstimateDelta(chiplets []Chiplet, changed int) (*Result, error) {
	sc := &e.sc
	if e.p.Arch == ThreeD ||
		changed < 0 || changed >= len(chiplets) ||
		len(sc.blocks) != len(chiplets) ||
		sc.blocks[changed].Name != chiplets[changed].Name {
		return e.Estimate(chiplets)
	}
	c := chiplets[changed]
	// Other chiplets are unchanged since the previous (validated) call;
	// only the changed one needs the input checks.
	if c.AreaMM2 <= 0 {
		return nil, fmt.Errorf("pkgcarbon: chiplet %q has non-positive area", c.Name)
	}
	if c.Node == nil {
		return nil, fmt.Errorf("pkgcarbon: chiplet %q has no technology node", c.Name)
	}
	sc.blocks[changed].AreaMM2 = c.AreaMM2
	// The delta re-plans the retained tree: invalidate any merge-fork
	// base primed earlier (see the same move in estimateWith).
	sc.baseNodes = sc.baseNodes[:0]
	var fp *floorplan.Result
	var err error
	if e.p.FlexibleFloorplan {
		fp, err = sc.fpx.Update(changed, c.AreaMM2)
	} else {
		fp, err = sc.fp.Update(changed, c.AreaMM2)
	}
	if err != nil {
		return nil, err
	}
	// Reuse the scratch Result without re-zeroing: finishEstimate
	// rewrites every field this (fixed) architecture's path writes, and
	// the fields it never writes were zeroed by the first full estimate
	// and can never have been set since.
	res := &sc.res
	if err := finishEstimate(res, chiplets, &e.p, fp, sc); err != nil {
		return nil, err
	}
	return res, nil
}

// MergeForkable reports whether this estimator can serve
// EstimateMergeFork's pinned-base fast path: architectures whose model
// consumes only the package bounding box (no 3D stacks, no bridge
// adjacencies) with fixed-shape floorplans.
func (e *Estimator) MergeForkable() bool {
	return e.p.Arch != ThreeD && e.p.Arch != SiliconBridge && !e.p.FlexibleFloorplan
}

// EstimateMergeFork is Estimate for the merge-candidate shape of a
// Disaggregate greedy step: the chiplet set primed by the last
// PrimeMergeBase with the dies at base indices r1 and r2 removed and
// merged appended last. Unlike Estimate, the fork does NOT commit the
// candidate as the retained state — the floorplan tree stays pinned to
// the base, so every candidate of a step forks against the same warm
// tree (floorplan.Tree.ForkDims) instead of re-planning, the candidate
// descriptor set is never even materialized (survivor geometry and
// nodes are read off the pinned base), and the result is bit-identical
// to a full Estimate of the candidate set by the fork's construction.
func (e *Estimator) EstimateMergeFork(r1, r2 int, merged Chiplet) (*Result, error) {
	sc := &e.sc
	n := len(sc.blocks)
	if !e.MergeForkable() {
		return nil, fmt.Errorf("pkgcarbon: EstimateMergeFork on a non-forkable estimator (%v, flexible=%v)", e.p.Arch, e.p.FlexibleFloorplan)
	}
	if len(sc.baseNodes) != n || n < 3 {
		return nil, fmt.Errorf("pkgcarbon: EstimateMergeFork without a primed base of 3+ dies (have %d)", n)
	}
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	if r1 < 0 || r2 >= n || r1 == r2 {
		return nil, fmt.Errorf("pkgcarbon: EstimateMergeFork removed indices (%d, %d) invalid for %d dies", r1, r2, n)
	}
	if merged.AreaMM2 <= 0 {
		return nil, fmt.Errorf("pkgcarbon: chiplet %q has non-positive area", merged.Name)
	}
	if merged.Node == nil {
		return nil, fmt.Errorf("pkgcarbon: chiplet %q has no technology node", merged.Name)
	}
	w, h, total, err := sc.fp.ForkDims(r1, r2, floorplan.Block{Name: merged.Name, AreaMM2: merged.AreaMM2})
	if err != nil {
		return nil, err
	}
	sc.forkFP = floorplan.Result{WidthMM: w, HeightMM: h, ChipletAreaMM2: total}
	res := newResult(sc)
	res.Arch = e.p.Arch
	res.PackageAreaMM2 = sc.forkFP.AreaMM2()
	res.WhitespaceMM2 = sc.forkFP.WhitespaceMM2()
	res.Floorplan = &sc.forkFP
	// The arch model runs directly, bypassing the per-area package memo:
	// candidate bounding boxes essentially never repeat within a search,
	// so the memo would only pay hashing and growth. The model is pure
	// in the area, so the bits cannot differ from the memoized path.
	if err := runArchModel(res, nil, &e.p, &sc.forkFP); err != nil {
		return nil, err
	}
	dies := n - 1
	res.PackageKg += float64(dies) * e.p.AttachEnergyKWhPerChiplet *
		e.p.CarbonIntensity / res.AssemblyYield
	return addCommunicationFork(res, sc, &e.p, r1, r2, merged.Node)
}

// addCommunicationFork is addCommunication for a merge-fork candidate:
// the same per-node cells summed in the candidate's chiplet order
// (survivors in base order, merged last), with the nodes read off the
// primed base instead of a materialized descriptor set. Architectures
// outside MergeForkable never reach it.
func addCommunicationFork(res *Result, sc *scratch, p *Params, r1, r2 int, mergedNode *tech.Node) (*Result, error) {
	n := len(sc.baseNodes)
	dies := n - 1
	cached := commSlots(sc, dies)
	fullRouter := res.Arch == PassiveInterposer
	if res.Arch == ActiveInterposer {
		cc, err := commFor(sc, p.PackagingNode, p, true)
		if err != nil {
			return nil, err
		}
		nd := float64(dies)
		res.RoutingKg = nd * cc.kg
		res.RouterTotalPowerW = nd * cc.powerW
		return res, nil
	}
	var total, areaSum, powerSum float64
	k := 0
	for i := 0; i < n; i++ {
		if i == r1 || i == r2 {
			continue
		}
		cc, err := commSlot(sc, cached, k, sc.baseNodes[i], p, fullRouter)
		if err != nil {
			return nil, err
		}
		total += cc.kg
		areaSum += cc.areaMM2
		powerSum += cc.powerW
		k++
	}
	cc, err := commSlot(sc, cached, k, mergedNode, p, fullRouter)
	if err != nil {
		return nil, err
	}
	total += cc.kg
	areaSum += cc.areaMM2
	powerSum += cc.powerW
	res.RoutingKg = total
	res.RouterAreaPerChipletMM2 = areaSum / float64(dies)
	if fullRouter {
		res.RouterTotalPowerW = powerSum
	}
	return res, nil
}

// PrimeMergeBase pins chiplets as the merge-fork base: it validates the
// descriptors, records their nodes and commits their floorplan to the
// retained tree without running the packaging model (whose result a
// primer would discard). After a successful prime, EstimateMergeFork
// serves candidates derived from this base.
func (e *Estimator) PrimeMergeBase(chiplets []Chiplet) error {
	if !e.MergeForkable() {
		return fmt.Errorf("pkgcarbon: PrimeMergeBase on a non-forkable estimator (%v, flexible=%v)", e.p.Arch, e.p.FlexibleFloorplan)
	}
	if len(chiplets) == 0 {
		return fmt.Errorf("pkgcarbon: no chiplets")
	}
	for _, c := range chiplets {
		if c.AreaMM2 <= 0 {
			return fmt.Errorf("pkgcarbon: chiplet %q has non-positive area", c.Name)
		}
		if c.Node == nil {
			return fmt.Errorf("pkgcarbon: chiplet %q has no technology node", c.Name)
		}
	}
	sc := &e.sc
	if cap(sc.blocks) < len(chiplets) {
		sc.blocks = make([]floorplan.Block, len(chiplets))
	}
	if cap(sc.baseNodes) < len(chiplets) {
		sc.baseNodes = make([]*tech.Node, len(chiplets))
	}
	blocks := sc.blocks[:len(chiplets)]
	sc.blocks = blocks
	sc.baseNodes = sc.baseNodes[:len(chiplets)]
	for i, c := range chiplets {
		blocks[i] = floorplan.Block{Name: c.Name, AreaMM2: c.AreaMM2}
		sc.baseNodes[i] = c.Node
	}
	_, err := sc.fp.PlanDims(blocks, e.p.SpacingMM)
	return err
}

// FloorplanStats snapshots the retained floorplan trees' reuse counters
// (fast-path hits, name-keyed diff hits, fallbacks, relayout depth) —
// the fixed-shape tree's and the shape-curve tree's folded together (an
// estimator only ever drives one of them, per its FlexibleFloorplan
// setting).
func (e *Estimator) FloorplanStats() floorplan.TreeStats {
	s := e.sc.fp.Stats()
	s.Add(e.sc.fpx.Stats())
	return s
}

// Routing is the communication slice of a packaging Result: the only
// C_HI terms that read the chiplets' own technology-node parameters
// (the router/PHY silicon is charged at its host node's CFPA).
type Routing struct {
	// RoutingKg is C_mfg,comm.
	RoutingKg float64
	// RouterAreaPerChipletMM2 is the per-chiplet NoC/PHY area.
	RouterAreaPerChipletMM2 float64
	// RouterTotalPowerW is the added inter-die communication power.
	RouterTotalPowerW float64
}

// EstimateRouting computes only the communication terms of Estimate for
// the chiplet set — bit-identical to the corresponding fields of the full
// estimate, with no floorplanning and no package-carbon work. Compiled
// parameter plans use it to refresh the node-dependent slice of a
// tabulated packaging result when only tech-node parameters (defect
// density, EPA, ...) were perturbed: the floorplan and package carbon
// depend on areas and the packaging node alone and stay valid.
func EstimateRouting(chiplets []Chiplet, p Params) (Routing, error) {
	if len(chiplets) == 0 {
		return Routing{}, fmt.Errorf("pkgcarbon: no chiplets")
	}
	if err := p.Validate(); err != nil {
		return Routing{}, err
	}
	var res Result
	res.Arch = p.Arch
	if err := addCommunication(&res, chiplets, &p, nil); err != nil {
		return Routing{}, err
	}
	return Routing{
		RoutingKg:               res.RoutingKg,
		RouterAreaPerChipletMM2: res.RouterAreaPerChipletMM2,
		RouterTotalPowerW:       res.RouterTotalPowerW,
	}, nil
}

// commCell is a memoized per-node communication contribution.
type commCell struct {
	areaMM2 float64
	kg      float64
	powerW  float64
}

// pkgCell is a memoized architecture package term: for RDL and the two
// interposer architectures the whole (yield, package carbon, bond
// count) triple is a pure function of the package bounding-box area
// under an estimator's fixed parameters, so a scratch caches it per
// exact area bits — the repeated-run serving shape (compile a plan
// once, evaluate it per request) revisits the same areas and skips the
// negative-binomial yield math entirely.
type pkgCell struct {
	assemblyYield float64
	packageKg     float64
	numBonds      float64
}

// pkgSlotBits sizes the per-scratch package-term cache: 2^pkgSlotBits
// direct-mapped slots. A colliding area overwrites its slot and is
// recomputed on the next visit — eviction changes only speed, never a
// bit, because the cached triple is a pure function of the area.
const pkgSlotBits = 10

// scratch carries the reusable state of an Estimator. A nil *scratch
// selects the allocate-fresh behavior of the package-level Estimate.
type scratch struct {
	blocks    []floorplan.Block
	fp        floorplan.Tree
	fpx       floorplan.FlexTree // flexible-floorplan systems only
	forkFP    floorplan.Result   // EstimateMergeFork's transient bounding box
	baseNodes []*tech.Node       // merge-fork base nodes (PrimeMergeBase)
	res       Result
	comm      map[*tech.Node]commCell
	// The per-chiplet slot cache of the last communication cell used per
	// index, stored as struct-of-arrays columns so the per-point fold
	// reads dense float64 slices: commNode records which node each slot
	// was computed for (the changed chiplet may have switched nodes; a
	// pointer mismatch refills the slot from the per-node memo), and
	// commKgCol/commAreaCol/commPowerCol carry the cell values.
	commNode     []*tech.Node
	commKgCol    []float64
	commAreaCol  []float64
	commPowerCol []float64
	// pkgKeys/pkgCells are the per-area package-term cache (see pkgCell):
	// direct-mapped flat arrays keyed by the area's exact float bits,
	// replacing a hash map on the sweep walk's hottest lookup. Slot 0 of
	// pkgKeys doubles as the empty marker — a validated package area is
	// strictly positive, so its bit pattern is never zero. Lazy.
	pkgKeys  []uint64
	pkgCells []pkgCell
}

func estimateWith(chiplets []Chiplet, p *Params, sc *scratch) (*Result, error) {
	if len(chiplets) == 0 {
		return nil, fmt.Errorf("pkgcarbon: no chiplets")
	}
	for _, c := range chiplets {
		if c.AreaMM2 <= 0 {
			return nil, fmt.Errorf("pkgcarbon: chiplet %q has non-positive area", c.Name)
		}
		if c.Node == nil {
			return nil, fmt.Errorf("pkgcarbon: chiplet %q has no technology node", c.Name)
		}
	}
	if p.Arch == ThreeD {
		return estimate3D(chiplets, p, sc)
	}

	var blocks []floorplan.Block
	if sc != nil {
		if cap(sc.blocks) < len(chiplets) {
			sc.blocks = make([]floorplan.Block, len(chiplets))
		}
		blocks = sc.blocks[:len(chiplets)]
		sc.blocks = blocks
		// A full estimate re-plans the retained tree, so any merge-fork
		// base primed earlier no longer matches it: invalidate the base
		// so a stale EstimateMergeFork fails loudly instead of mixing
		// two block sets.
		sc.baseNodes = sc.baseNodes[:0]
	} else {
		blocks = make([]floorplan.Block, len(chiplets))
	}
	for i, c := range chiplets {
		blocks[i] = floorplan.Block{Name: c.Name, AreaMM2: c.AreaMM2}
	}
	var fp *floorplan.Result
	var err error
	switch {
	case p.FlexibleFloorplan && sc != nil:
		// The retained shape-curve tree turns repeat plans over the same
		// block shape into dirty-path recomputes of the Pareto sets.
		fp, err = sc.fpx.Plan(blocks, p.SpacingMM, nil)
	case p.FlexibleFloorplan:
		fp, err = floorplan.PlanFlexible(blocks, p.SpacingMM, nil)
	case sc != nil && p.Arch != SiliconBridge:
		// Only the bridge model reads adjacencies or placements; every
		// other architecture consumes just the bounding box, so the
		// scratch path plans dims-only — no pairwise scan, no placement
		// replay — keeping the per-estimate cost flat in the chiplet
		// count. The retained tree turns repeat plans over the same
		// block shape into incremental relayouts and block-set changes
		// into name-keyed diffs.
		fp, err = sc.fp.PlanDims(blocks, p.SpacingMM)
	case sc != nil:
		fp, err = sc.fp.Plan(blocks, p.SpacingMM)
	default:
		fp, err = floorplan.Plan(blocks, p.SpacingMM)
	}
	if err != nil {
		return nil, err
	}
	res := newResult(sc)
	if err := finishEstimate(res, chiplets, p, fp, sc); err != nil {
		return nil, err
	}
	return res, nil
}

// finishEstimate runs everything after the floorplan: the architecture
// package-carbon model, the attach term and the communication overhead.
// It is shared by the full path, the single-changed-chiplet delta path
// and EstimateOnFloorplan, so the float expressions (and their order)
// cannot diverge between them.
func finishEstimate(res *Result, chiplets []Chiplet, p *Params, fp *floorplan.Result, sc *scratch) error {
	res.Arch = p.Arch
	res.PackageAreaMM2 = fp.AreaMM2()
	res.WhitespaceMM2 = fp.WhitespaceMM2()
	res.Floorplan = fp
	// The bridge model reads the adjacency list, so only the three
	// area-pure architectures go through the scratch's per-area memo
	// (the memoized triple carries the exact bits the model computes —
	// it is a pure function of the area under fixed params).
	if sc != nil && p.Arch != SiliconBridge {
		key := math.Float64bits(res.PackageAreaMM2)
		if sc.pkgKeys == nil {
			sc.pkgKeys = make([]uint64, 1<<pkgSlotBits)
			sc.pkgCells = make([]pkgCell, 1<<pkgSlotBits)
		}
		// Fibonacci hashing spreads the area bits across the slot space;
		// the tag check below makes collisions recomputes, not errors.
		slot := key * 0x9e3779b97f4a7c15 >> (64 - pkgSlotBits)
		if sc.pkgKeys[slot] == key {
			cell := &sc.pkgCells[slot]
			res.AssemblyYield = cell.assemblyYield
			res.PackageKg = cell.packageKg
			res.NumBonds = cell.numBonds
		} else {
			if err := runArchModel(res, chiplets, p, fp); err != nil {
				return err
			}
			sc.pkgKeys[slot] = key
			sc.pkgCells[slot] = pkgCell{
				assemblyYield: res.AssemblyYield,
				packageKg:     res.PackageKg,
				numBonds:      res.NumBonds,
			}
		}
	} else if err := runArchModel(res, chiplets, p, fp); err != nil {
		return err
	}
	// Per-chiplet attach energy, charged through the assembly yield so
	// failed assemblies are borne by the good ones.
	res.PackageKg += float64(len(chiplets)) * p.AttachEnergyKWhPerChiplet *
		p.CarbonIntensity / res.AssemblyYield
	return addCommunication(res, chiplets, p, sc)
}

// runArchModel dispatches the architecture-specific package-carbon
// model (the memoizable slice of finishEstimate).
func runArchModel(res *Result, chiplets []Chiplet, p *Params, fp *floorplan.Result) error {
	switch p.Arch {
	case RDLFanout:
		return estimateRDL(res, p)
	case SiliconBridge:
		return estimateBridge(res, fp, p)
	case PassiveInterposer:
		return estimateInterposer(res, chiplets, p, false)
	case ActiveInterposer:
		return estimateInterposer(res, chiplets, p, true)
	}
	return fmt.Errorf("pkgcarbon: unknown architecture %v", p.Arch)
}

// EstimateOnFloorplan is Estimate for a chiplet set whose floorplan is
// already known: fp must be the floorplan of these chiplets' areas at
// p.SpacingMM under the same FlexibleFloorplan setting (for bridge
// architectures it must carry the adjacency scan). Compiled parameter
// plans use it to re-run the packaging model under perturbed parameters
// that leave the floorplan geometry untouched — the result then carries
// the exact float bits of a full Estimate. For ThreeD (which has no
// floorplan) fp is ignored and the full stack model runs.
func EstimateOnFloorplan(chiplets []Chiplet, p Params, fp *floorplan.Result) (*Result, error) {
	// The checks run in Estimate's order, so the two paths surface
	// identical errors.
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(chiplets) == 0 {
		return nil, fmt.Errorf("pkgcarbon: no chiplets")
	}
	for _, c := range chiplets {
		if c.AreaMM2 <= 0 {
			return nil, fmt.Errorf("pkgcarbon: chiplet %q has non-positive area", c.Name)
		}
		if c.Node == nil {
			return nil, fmt.Errorf("pkgcarbon: chiplet %q has no technology node", c.Name)
		}
	}
	if p.Arch == ThreeD {
		return estimate3D(chiplets, &p, nil)
	}
	if fp == nil || len(fp.Placements) != len(chiplets) {
		return nil, fmt.Errorf("pkgcarbon: EstimateOnFloorplan needs a floorplan of all %d chiplets", len(chiplets))
	}
	res := &Result{}
	if err := finishEstimate(res, chiplets, &p, fp, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// newResult returns the scratch-owned Result (zeroed) or a fresh one.
func newResult(sc *scratch) *Result {
	if sc == nil {
		return &Result{}
	}
	sc.res = Result{}
	return &sc.res
}

// estimateRDL implements Eq. (9): per-layer patterning energy over the
// package area, divided by the layered RDL yield.
func estimateRDL(res *Result, p *Params) error {
	areaCM2 := res.PackageAreaMM2 / 100
	// RDL layers are coarse (6-10 um L/S); their per-layer yield uses
	// the negative-binomial model at a derated defect density.
	perLayer := yieldmodel.Die(res.PackageAreaMM2, p.PackagingNode.DefectDensity*rdlDefectDerate)
	y := yieldmodel.Layered(perLayer, p.RDLLayers)
	res.AssemblyYield = y
	energy := float64(p.RDLLayers) * p.PackagingNode.EPLARDL * areaCM2
	res.PackageKg = energy * p.CarbonIntensity / y
	return nil
}

// rdlDefectDerate scales the silicon defect density down for the coarse
// RDL linewidths (6-10 um L/S vs sub-um silicon metal).
const rdlDefectDerate = 0.25

// bridgeDefectMultiplier scales defect density up for the ultra-fine
// (2 um L/S) bridge interconnect, which is the reason EMIB yields trail
// RDL (Section II-C).
const bridgeDefectMultiplier = 8

// estimateBridge implements Eq. (10): one bridge per 2 mm of shared edge
// between adjacent chiplets, each carrying patterning plus embedding
// energy over the bridge yield.
func estimateBridge(res *Result, fp *floorplan.Result, p *Params) error {
	n := 0
	for _, adj := range fp.Adjacencies {
		n += int(math.Ceil(adj.OverlapMM / p.BridgeRangeMM))
	}
	if n == 0 {
		return fmt.Errorf("pkgcarbon: EMIB floorplan produced no adjacent chiplet pairs")
	}
	res.NumBridges = n
	y := yieldmodel.Die(p.BridgeAreaMM2, p.PackagingNode.DefectDensity*bridgeDefectMultiplier)
	y = yieldmodel.Layered(y, p.BridgeLayers)
	res.AssemblyYield = y
	perBridgeEnergy := float64(p.BridgeLayers)*p.PackagingNode.EPLABridge*(p.BridgeAreaMM2/100) + p.BridgeEmbedEnergyKWh
	res.PackageKg = float64(n) * perBridgeEnergy * p.CarbonIntensity / y
	return nil
}

// beolEPAFraction is the share of a node's full-flow EPA attributable to
// BEOL-only processing, used for the passive interposer which has no
// devices.
const beolEPAFraction = 0.4

// interposerTSVPitchUM is the pitch of the through-silicon vias that
// carry interposer signals down to the package substrate (Fig. 4(c):
// 2.5D interposers are TSV-based). TSVs sit at the coarse end of the
// Table I range since they only serve substrate escape, not die-to-die
// bandwidth.
const interposerTSVPitchUM = 45.0

// estimateInterposer models 2.5D interposers as an additional large
// silicon die spanning the package area. Passive interposers carry only
// BEOL processing plus material; active interposers carry the full flow
// energy (FEOL+BEOL) plus gas emissions, since devices are fabricated
// even though they are used only in local router regions. Both carry a
// grid of escape TSVs to the package substrate.
func estimateInterposer(res *Result, chiplets []Chiplet, p *Params, active bool) error {
	n := p.PackagingNode
	areaCM2 := res.PackageAreaMM2 / 100
	y := yieldmodel.Die(res.PackageAreaMM2, n.DefectDensity)
	res.AssemblyYield = y

	var rawKgPerCM2 float64
	if active {
		rawKgPerCM2 = n.EquipEfficiency*p.CarbonIntensity*n.EPA + n.GasCFP + n.MaterialCFP
	} else {
		rawKgPerCM2 = n.EquipEfficiency*p.CarbonIntensity*(beolEPAFraction*n.EPA) + n.MaterialCFP
	}
	// Metal patterning for the interposer's routing layers.
	layerKgPerCM2 := float64(p.InterposerBEOLLayers) * n.EPLARDL * p.CarbonIntensity
	// Escape TSVs through the interposer to the substrate.
	pitchMM := interposerTSVPitchUM / 1000
	tsvs := res.PackageAreaMM2 / (pitchMM * pitchMM)
	res.NumBonds = tsvs
	tsvKg := tsvs * EnergyPerTSVKWh * p.CarbonIntensity

	res.PackageKg = ((rawKgPerCM2+layerKgPerCM2)*areaCM2 + tsvKg) / y
	return nil
}

// estimate3D implements Eq. (11): a dense grid of vertical bonds at
// minimum pitch across the stack footprint. Following Section V-B(1), the
// bond grid is a single vertical stack network across all tiers (the
// footprint shrinks as logic is split across more tiers, so the bond
// count falls even though the assembly yield degrades with tier count).
func estimate3D(chiplets []Chiplet, p *Params, sc *scratch) (*Result, error) {
	footprint := 0.0
	for _, c := range chiplets {
		footprint = math.Max(footprint, c.AreaMM2)
	}
	res := newResult(sc)
	res.Arch = ThreeD
	res.PackageAreaMM2 = footprint

	pitchMM := p.BondPitchUM / 1000
	bonds := footprint / (pitchMM * pitchMM)
	res.NumBonds = bonds

	tiers := len(chiplets)
	bondY := yieldmodel.BondYieldFromPitch(p.BondPitchUM)
	y := math.Pow(bondY, float64(tiers-1))
	res.AssemblyYield = y
	res.PackageKg = bonds * p.energyPerBond() * p.CarbonIntensity / y

	if err := addCommunication(res, chiplets, p, sc); err != nil {
		return nil, err
	}
	return res, nil
}

// addCommunication adds C_mfg,comm per Section III-D(2):
//
//   - interposer-based and 3D systems need a full NoC router per chiplet
//     (in the chiplet's node for passive interposers and 3D, in the
//     packaging node for active interposers, where it also consumes
//     interposer FEOL),
//   - RDL and EMIB packages only need small PHY IPs inside each chiplet.
//
// Router/PHY silicon is charged at the carbon of its host node using the
// same CFPA formulation as Eq. (6) (without wafer wastage: the blocks are
// tiny IP regions, not separate dies).
//
// All three per-node contributions are pure in (Router config, node,
// carbon intensity), so a scratch memoizes them per *tech.Node — a full
// factorial sweep revisits the same handful of nodes for every point —
// without changing a single bit of the summation. On top of the map
// memo, a scratch keeps the last cell per chiplet slot (commSlot): a
// Gray step changes one chiplet's node, so the other slots fold their
// cached cells without re-hashing.
func addCommunication(res *Result, chiplets []Chiplet, p *Params, sc *scratch) error {
	switch res.Arch {
	case RDLFanout, SiliconBridge:
		total, areaSum, _, err := commFold(sc, chiplets, p, false)
		if err != nil {
			return err
		}
		res.RoutingKg = total
		res.RouterAreaPerChipletMM2 = areaSum / float64(len(chiplets))
		// PHYs are near-DC interfaces; their power is folded into the
		// system power elsewhere. Keep router power zero here.
		return nil

	case PassiveInterposer, ThreeD:
		total, areaSum, powerSum, err := commFold(sc, chiplets, p, true)
		if err != nil {
			return err
		}
		res.RoutingKg = total
		res.RouterAreaPerChipletMM2 = areaSum / float64(len(chiplets))
		res.RouterTotalPowerW = powerSum
		return nil

	case ActiveInterposer:
		cc, err := commFor(sc, p.PackagingNode, p, true)
		if err != nil {
			return err
		}
		n := float64(len(chiplets))
		res.RoutingKg = n * cc.kg
		res.RouterTotalPowerW = n * cc.powerW
		return nil
	}
	return fmt.Errorf("pkgcarbon: unknown architecture %v", res.Arch)
}

// commFold sums the per-chiplet communication contributions as three
// sequential column folds. It first refreshes the stale slots of the
// scratch's per-chiplet column cache (a Gray step changes at most one),
// then reduces each column in slot order. Each accumulator sees exactly
// the additions, in exactly the order, of the old per-chiplet loop —
// the columns are merely refreshed up front instead of inline — so the
// dense fold cannot change a bit.
func commFold(sc *scratch, chiplets []Chiplet, p *Params, fullRouter bool) (kgSum, areaSum, powerSum float64, err error) {
	if cached := commSlots(sc, len(chiplets)); !cached {
		for _, c := range chiplets {
			cc, err := commFor(sc, c.Node, p, fullRouter)
			if err != nil {
				return 0, 0, 0, err
			}
			kgSum += cc.kg
			areaSum += cc.areaMM2
			powerSum += cc.powerW
		}
		return kgSum, areaSum, powerSum, nil
	}
	for i, c := range chiplets {
		if sc.commNode[i] == c.Node {
			continue
		}
		cc, err := commFor(sc, c.Node, p, fullRouter)
		if err != nil {
			return 0, 0, 0, err
		}
		sc.commNode[i] = c.Node
		sc.commKgCol[i] = cc.kg
		sc.commAreaCol[i] = cc.areaMM2
		sc.commPowerCol[i] = cc.powerW
	}
	for _, v := range sc.commKgCol {
		kgSum += v
	}
	for _, v := range sc.commAreaCol {
		areaSum += v
	}
	for _, v := range sc.commPowerCol {
		powerSum += v
	}
	return kgSum, areaSum, powerSum, nil
}

// commSlots sizes the scratch's per-chiplet column cache, invalidating
// it when the chiplet count changed, and reports whether a scratch
// backs the slots at all.
func commSlots(sc *scratch, n int) bool {
	if sc == nil {
		return false
	}
	if len(sc.commNode) != n {
		if cap(sc.commNode) < n {
			sc.commNode = make([]*tech.Node, n)
			sc.commKgCol = make([]float64, n)
			sc.commAreaCol = make([]float64, n)
			sc.commPowerCol = make([]float64, n)
		}
		sc.commNode = sc.commNode[:n]
		sc.commKgCol = sc.commKgCol[:n]
		sc.commAreaCol = sc.commAreaCol[:n]
		sc.commPowerCol = sc.commPowerCol[:n]
		for i := range sc.commNode {
			sc.commNode[i] = nil
		}
	}
	return true
}

// commSlot returns chiplet slot i's communication cell, served from the
// per-slot column cache when the slot's node pointer is unchanged and
// filled from commFor (the per-node memo) otherwise. The cell values
// are pure in the node, so the extra cache layer cannot change a bit.
func commSlot(sc *scratch, cached bool, i int, n *tech.Node, p *Params, fullRouter bool) (commCell, error) {
	if cached && sc.commNode[i] == n {
		return commCell{areaMM2: sc.commAreaCol[i], kg: sc.commKgCol[i], powerW: sc.commPowerCol[i]}, nil
	}
	cc, err := commFor(sc, n, p, fullRouter)
	if err != nil {
		return commCell{}, err
	}
	if cached {
		sc.commNode[i] = n
		sc.commKgCol[i] = cc.kg
		sc.commAreaCol[i] = cc.areaMM2
		sc.commPowerCol[i] = cc.powerW
	}
	return cc, nil
}

// commFor computes (or recalls) one node's communication contribution.
// fullRouter selects a complete NoC router (interposer/3D architectures);
// otherwise the node carries only a PHY IP. The memo key is the node
// pointer — tech.DB hands out stable *Node values — and an Estimator's
// architecture is fixed, so the router/PHY distinction never changes
// within one scratch.
func commFor(sc *scratch, n *tech.Node, p *Params, fullRouter bool) (commCell, error) {
	if sc != nil {
		if cc, ok := sc.comm[n]; ok {
			return cc, nil
		}
	}
	var cc commCell
	if fullRouter {
		a, err := noc.AreaMM2(p.Router, n)
		if err != nil {
			return commCell{}, err
		}
		w, err := noc.PowerW(p.Router, n, p.RouterPower)
		if err != nil {
			return commCell{}, err
		}
		cc = commCell{areaMM2: a, kg: chipletLogicCarbon(n, a, p.CarbonIntensity), powerW: w}
	} else {
		a, err := noc.PHYAreaMM2(p.Router, n)
		if err != nil {
			return commCell{}, err
		}
		cc = commCell{areaMM2: a, kg: chipletLogicCarbon(n, a, p.CarbonIntensity)}
	}
	if sc != nil {
		sc.comm[n] = cc
	}
	return cc, nil
}

// chipletLogicCarbon is the Eq. (6) CFPA (without wastage) applied to a
// small logic region of the given area in the given node.
func chipletLogicCarbon(n *tech.Node, areaMM2, carbonIntensity float64) float64 {
	y := yieldmodel.Die(areaMM2, n.DefectDensity)
	raw := n.EquipEfficiency*carbonIntensity*n.EPA + n.GasCFP + n.MaterialCFP
	return raw / y * areaMM2 / 100
}

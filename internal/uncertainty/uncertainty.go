// Package uncertainty propagates input-parameter uncertainty through the
// ECO-CHIP carbon model. Section VII of the paper stresses that the tool
// "can generate numbers as accurate as the accuracy of the input
// parameters" — defect densities, design times and energy intensities are
// published only as ranges. This package runs a deterministic (seeded)
// Monte Carlo over those ranges and reports the resulting C_tot / C_emb
// distribution, so a result can be quoted with honest error bars instead
// of a single point.
package uncertainty

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/tech"
)

// Spread is the relative half-width applied to each sampled parameter
// (uniform distribution, clamped to Table I bounds).
type Spread struct {
	// DefectDensity, EPA, FabIntensity, DesignTime are relative
	// half-widths in [0, 0.5].
	DefectDensity float64
	EPA           float64
	FabIntensity  float64
	DesignTime    float64
}

// DefaultSpread reflects the coarse granularity of public sustainability
// data: +/-20% on defect density and EPA, +/-15% on energy intensity,
// +/-30% on design effort.
func DefaultSpread() Spread {
	return Spread{DefectDensity: 0.20, EPA: 0.20, FabIntensity: 0.15, DesignTime: 0.30}
}

// Validate bounds the spreads.
func (s Spread) Validate() error {
	for name, v := range map[string]float64{
		"defect density": s.DefectDensity, "EPA": s.EPA,
		"fab intensity": s.FabIntensity, "design time": s.DesignTime,
	} {
		if v < 0 || v > 0.5 {
			return fmt.Errorf("uncertainty: %s spread %g outside [0, 0.5]", name, v)
		}
	}
	return nil
}

// Distribution summarizes the sampled carbon values.
type Distribution struct {
	// Samples is the number of Monte Carlo trials.
	Samples int
	// MeanKg and the percentile cuts of the sampled metric.
	MeanKg, P5Kg, P50Kg, P95Kg float64
	// MinKg and MaxKg bound the samples.
	MinKg, MaxKg float64
}

// RelativeSpread is (P95-P5)/P50: the two-sided relative uncertainty.
func (d Distribution) RelativeSpread() float64 {
	if d.P50Kg == 0 {
		return 0
	}
	return (d.P95Kg - d.P5Kg) / d.P50Kg
}

// sampleSeed derives sample i's private RNG stream from the run seed
// with a splitmix64 finalizer. Each Monte Carlo trial owns an
// independent, index-addressed stream, so the sampled values do not
// depend on which worker draws them or in what order — the whole run is
// bit-reproducible at any parallelism.
func sampleSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run samples the system's embodied carbon n times with parameters drawn
// uniformly within the spread (seeded: identical inputs give identical
// distributions).
func Run(base *core.System, db *tech.DB, spread Spread, n int, seed int64) (Distribution, error) {
	return RunCtx(context.Background(), base, db, spread, n, seed)
}

// RunCtx is Run with cancellation and engine options. Samples fan out
// across the batch engine; results are identical for any worker count
// because every sample draws from its own seed-derived RNG stream.
func RunCtx(ctx context.Context, base *core.System, db *tech.DB, spread Spread, n int, seed int64, opts ...engine.Option) (Distribution, error) {
	if n < 10 {
		return Distribution{}, fmt.Errorf("uncertainty: need at least 10 samples, got %d", n)
	}
	if err := spread.Validate(); err != nil {
		return Distribution{}, err
	}
	if err := base.Validate(db); err != nil {
		return Distribution{}, err
	}
	samples, err := engine.Run(ctx, n, func(_ context.Context, i int, h *core.Hooks) (float64, error) {
		rng := rand.New(rand.NewSource(sampleSeed(seed, i)))
		draw := func(rel float64) float64 {
			if rel == 0 {
				return 1
			}
			return 1 + rel*(2*rng.Float64()-1)
		}
		d0Scale := draw(spread.DefectDensity)
		epaScale := draw(spread.EPA)
		dbi, err := db.Clone(func(node *tech.Node) {
			node.DefectDensity = tech.Clamp(node.DefectDensity*d0Scale, 0.07, 0.3)
			node.EPA = tech.Clamp(node.EPA*epaScale, 0.8, 3.5)
		})
		if err != nil {
			return 0, err
		}
		s := *base
		s.Mfg.CarbonIntensity = tech.Clamp(s.Mfg.CarbonIntensity*draw(spread.FabIntensity), 0.030, 0.700)
		s.Design.PowerW = s.Design.PowerW * draw(spread.DesignTime)
		rep, err := s.EvaluateWith(dbi, h)
		if err != nil {
			return 0, err
		}
		return rep.EmbodiedKg(), nil
	}, opts...)
	if err != nil {
		return Distribution{}, err
	}
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return Distribution{
		Samples: n,
		MeanKg:  sum / float64(n),
		P5Kg:    pct(0.05),
		P50Kg:   pct(0.50),
		P95Kg:   pct(0.95),
		MinKg:   samples[0],
		MaxKg:   samples[len(samples)-1],
	}, nil
}

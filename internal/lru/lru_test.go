package lru

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrBuildCachesValue(t *testing.T) {
	c := New[int](0)
	builds := 0
	build := func() (int, error) { builds++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrBuild("k", build)
		if err != nil || v != 42 {
			t.Fatalf("GetOrBuild = %d, %v", v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Builds != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFailedBuildNotCached(t *testing.T) {
	c := New[int](0)
	boom := errors.New("boom")
	if _, err := c.GetOrBuild("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after failed build, want 0", c.Len())
	}
	v, err := c.GetOrBuild("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if s := c.Stats(); s.Builds != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 builds / 2 misses", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[string](2)
	mk := func(s string) func() (string, error) {
		return func() (string, error) { return s, nil }
	}
	c.GetOrBuild("a", mk("A"))
	c.GetOrBuild("b", mk("B"))
	c.GetOrBuild("a", mk("A")) // touch a: b is now LRU
	c.GetOrBuild("c", mk("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// Concurrent callers for one key must share a single build.
func TestSingleFlight(t *testing.T) {
	c := New[int](0)
	var builds atomic.Int64
	gate := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrBuild("k", func() (int, error) {
				builds.Add(1)
				<-gate // hold the build open until all callers have arrived
				return 99, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Wait until every late caller has either started the build or
	// coalesced onto it, then release the builder.
	for {
		s := c.Stats()
		if s.Builds+s.Coalesced+s.Hits >= callers {
			break
		}
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1", n)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

// A failing single-flight build must hand every waiter the same error.
func TestSingleFlightSharedError(t *testing.T) {
	c := New[int](0)
	boom := errors.New("boom")
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.GetOrBuild("k", func() (int, error) {
				<-gate
				return 0, boom
			})
		}(i)
	}
	for {
		s := c.Stats()
		if s.Builds+s.Coalesced >= callers {
			break
		}
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want boom", i, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("failed build left a resident entry")
	}
}

// Hammer distinct keys through a tiny cache under the race detector:
// every lookup must return its own key's value even while eviction
// churns the table.
func TestEvictionUnderLoad(t *testing.T) {
	c := New[int](2)
	const keys = 6
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % keys
				v, err := c.GetOrBuild(fmt.Sprintf("k%d", k), func() (int, error) { return k * 10, nil })
				if err != nil || v != k*10 {
					t.Errorf("key k%d -> %d, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("expected evictions under load, stats = %+v", s)
	}
	if c.Len() > 2 {
		t.Fatalf("Len = %d exceeds capacity 2", c.Len())
	}
}

package shard

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultSpec describes a seeded fault schedule for the Fault transport
// wrapper. Probabilistic fields act per delivered block result;
// CrashAfter acts on the wrapper's cumulative block counter. The zero
// value injects nothing.
type FaultSpec struct {
	// Seed seeds the schedule's RNG; the same spec over the same lease
	// stream replays the same faults.
	Seed int64
	// Drop is the per-block probability of silently discarding the
	// result (the lease then releases with the block undelivered and it
	// is re-leased).
	Drop float64
	// Dup is the per-block probability of delivering the result twice.
	Dup float64
	// Err is the per-block probability of failing the lease with a
	// transient error after the block (partial emission — earlier blocks
	// of the span were already delivered).
	Err float64
	// Crash is the per-block probability of the replica dying mid-block:
	// the result is lost, the lease fails with ErrReplicaDown, and every
	// later Execute fails immediately.
	Crash float64
	// CrashAfter, when positive, kills the replica deterministically
	// after that many delivered blocks (counted across leases).
	CrashAfter int
	// Delay stalls before each delivery (context-respecting) — the lever
	// for forcing lease expiry.
	Delay time.Duration
	// Slow stalls an additional Slow before a delivery chosen by
	// SlowProb — the straggler lever for exercising hedged leases
	// without pushing the lease past its expiry deadline.
	Slow time.Duration
	// SlowProb is the per-block probability that Slow applies; zero with
	// Slow set means every delivery is slowed.
	SlowProb float64
	// FlapEvery, when positive, alternates the replica between FlapEvery
	// accepted Execute calls and FlapEvery refused ones (a transient
	// outage, not a crash) — the deterministic lever for driving a
	// breaker through open → half-open → close.
	FlapEvery int
}

// ParseFaultSpec parses the ecodse -shard-faults syntax: a
// comma-separated key=value list, e.g.
//
//	drop=0.1,dup=0.05,err=0.05,crash-after=7,delay=2ms,seed=42
//
// Keys: drop, dup, err, crash, slow-prob (probabilities in [0,1]),
// crash-after, flap (counts), delay, slow (Go durations), seed (int64).
// An empty string is the zero spec.
func ParseFaultSpec(s string) (FaultSpec, error) {
	var spec FaultSpec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return FaultSpec{}, fmt.Errorf("shard: fault spec field %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			spec.Drop, err = parseProb(key, val)
		case "dup":
			spec.Dup, err = parseProb(key, val)
		case "err":
			spec.Err, err = parseProb(key, val)
		case "crash":
			spec.Crash, err = parseProb(key, val)
		case "crash-after":
			spec.CrashAfter, err = strconv.Atoi(val)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
		case "slow":
			spec.Slow, err = time.ParseDuration(val)
		case "slow-prob":
			spec.SlowProb, err = parseProb(key, val)
		case "flap":
			spec.FlapEvery, err = strconv.Atoi(val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return FaultSpec{}, fmt.Errorf("shard: unknown fault spec key %q", key)
		}
		if err != nil {
			return FaultSpec{}, fmt.Errorf("shard: fault spec %s: %w", key, err)
		}
	}
	return spec, nil
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("%s=%v outside [0,1]", key, p)
	}
	return p, nil
}

// Fault wraps a transport with a seeded fault schedule: dropped,
// duplicated and delayed deliveries, transient lease errors, and
// replica crashes (probabilistic or after a fixed block count). The
// wrapper is the chaos suite's failure generator; because every fault
// is recoverable by the coordinator's re-lease/dedup machinery, any
// schedule must leave the sweep output bit-identical.
func Fault(inner Transport, spec FaultSpec) Transport {
	return &faultTransport{inner: inner, spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

type faultTransport struct {
	inner Transport
	spec  FaultSpec

	mu        sync.Mutex
	rng       *rand.Rand
	delivered int
	execs     int
	dead      bool
}

// roll draws the fates of the next delivery under the mutex so
// concurrent leases (pipelined transports grant them) keep the
// schedule deterministic per wrapper.
func (f *faultTransport) roll() (drop, dup, errAfter, crash, slow bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delivered++
	if f.spec.CrashAfter > 0 && f.delivered >= f.spec.CrashAfter {
		return false, false, false, true, false
	}
	if f.spec.Crash > 0 && f.rng.Float64() < f.spec.Crash {
		return false, false, false, true, false
	}
	drop = f.spec.Drop > 0 && f.rng.Float64() < f.spec.Drop
	dup = !drop && f.spec.Dup > 0 && f.rng.Float64() < f.spec.Dup
	errAfter = f.spec.Err > 0 && f.rng.Float64() < f.spec.Err
	slow = f.spec.Slow > 0 && (f.spec.SlowProb <= 0 || f.rng.Float64() < f.spec.SlowProb)
	return drop, dup, errAfter, crash, slow
}

// flapDown reports whether this Execute call lands in a down phase of
// the flap cycle (FlapEvery up, FlapEvery down, repeating — counted
// across all Execute calls, probes included, so breaker recovery is a
// deterministic function of the attempt count).
func (f *faultTransport) flapDown() (int, bool) {
	if f.spec.FlapEvery <= 0 {
		return 0, false
	}
	f.mu.Lock()
	n := f.execs
	f.execs++
	f.mu.Unlock()
	return n, (n/f.spec.FlapEvery)%2 == 1
}

func (f *faultTransport) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return ErrReplicaDown
	}
	if n, down := f.flapDown(); down {
		return fmt.Errorf("shard: injected flap outage (attempt %d)", n)
	}
	err := f.inner.Execute(ctx, lease, func(res BlockResult) error {
		if f.spec.Delay > 0 {
			if !sleepCtx(ctx, f.spec.Delay) {
				return ctx.Err()
			}
		}
		drop, dup, errAfter, crash, slow := f.roll()
		if slow {
			if !sleepCtx(ctx, f.spec.Slow) {
				return ctx.Err()
			}
		}
		if crash {
			f.mu.Lock()
			f.dead = true
			f.mu.Unlock()
			// The block's result dies with the replica.
			return fmt.Errorf("%w: crashed mid-block %d", ErrReplicaDown, res.Block)
		}
		if !drop {
			if err := emit(res); err != nil {
				return err
			}
			if dup {
				if err := emit(res); err != nil {
					return err
				}
			}
		}
		if errAfter {
			return fmt.Errorf("shard: injected transient fault after block %d", res.Block)
		}
		return nil
	})
	return err
}

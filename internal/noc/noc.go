// Package noc estimates the silicon area and power of network-on-chip /
// network-on-interposer routers used for inter-die communication in 2.5D
// and 3D HI systems (Section III-D(2) of the ECO-CHIP paper).
//
// The paper delegates these scalars to ORION 3.0 [26] for power and Stow
// et al. [42] for area. Both are closed C++ tools, so this package
// re-implements the same microarchitectural accounting from first
// principles: a virtual-channel router is decomposed into its input
// buffers, crossbar, virtual-channel and switch allocators, and link
// drivers; each component gets a transistor estimate parameterised by flit
// width, port count, virtual channels and buffer depth; transistors are
// converted to area through the technology database's logic density and to
// power through the alpha*C*V^2*f dynamic model plus density-scaled
// leakage. The absolute magnitudes land in the range [42] reports
// (sub-mm^2 routers) and, critically, reproduce the *trends* the paper
// uses: router area grows with flit width and ports, shrinks with advanced
// nodes, and router power rises with V^2 f.
package noc

import (
	"fmt"

	"ecochip/internal/tech"
)

// Config describes a router microarchitecture. The zero value is not
// valid; use DefaultConfig for the paper's setup (512-bit flits, 5-port
// mesh router).
type Config struct {
	// FlitWidthBits is the datapath width (Table I: 512 bits).
	FlitWidthBits int
	// Ports is the number of bidirectional router ports (a 2D-mesh
	// router has 5: N, S, E, W, local).
	Ports int
	// VirtualChannels per port.
	VirtualChannels int
	// BufferDepthFlits is the per-VC input-buffer depth in flits.
	BufferDepthFlits int
}

// DefaultConfig is the ECO-CHIP experimental setup from Table I.
func DefaultConfig() Config {
	return Config{FlitWidthBits: 512, Ports: 5, VirtualChannels: 4, BufferDepthFlits: 4}
}

// Validate rejects degenerate router configurations.
func (c Config) Validate() error {
	if c.FlitWidthBits <= 0 || c.FlitWidthBits > 4096 {
		return fmt.Errorf("noc: flit width %d outside (0, 4096]", c.FlitWidthBits)
	}
	if c.Ports < 2 || c.Ports > 16 {
		return fmt.Errorf("noc: port count %d outside [2, 16]", c.Ports)
	}
	if c.VirtualChannels < 1 || c.VirtualChannels > 16 {
		return fmt.Errorf("noc: virtual channels %d outside [1, 16]", c.VirtualChannels)
	}
	if c.BufferDepthFlits < 1 || c.BufferDepthFlits > 64 {
		return fmt.Errorf("noc: buffer depth %d outside [1, 64]", c.BufferDepthFlits)
	}
	return nil
}

// Per-component transistor coefficients. These calibrate the model to the
// magnitudes reported by ORION 3.0 / Stow et al.: an SRAM bit costs ~6T
// plus ~2T of read/write periphery; a crossbar crosspoint is a ~10T
// mux/driver per bit; allocators are ~30T per request pair; each link bit
// needs pipeline register + driver (~16T).
const (
	transistorsPerBufferBit = 8.0
	transistorsPerXbarBit   = 10.0
	transistorsPerArbPair   = 30.0
	transistorsPerLinkBit   = 16.0
)

// Transistors returns the estimated transistor count of one router.
func Transistors(c Config) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	p := float64(c.Ports)
	vc := float64(c.VirtualChannels)
	depth := float64(c.BufferDepthFlits)
	flit := float64(c.FlitWidthBits)

	buffers := p * vc * depth * flit * transistorsPerBufferBit
	crossbar := p * p * flit * transistorsPerXbarBit
	allocators := (p*p*vc*vc + p*p) * transistorsPerArbPair
	links := p * flit * transistorsPerLinkBit
	return buffers + crossbar + allocators + links, nil
}

// AreaMM2 returns the router area when implemented in the given node.
// Routers are synthesized logic (buffers included), so the logic density
// applies.
func AreaMM2(c Config, n *tech.Node) (float64, error) {
	tr, err := Transistors(c)
	if err != nil {
		return 0, err
	}
	return n.Area(tech.Logic, tr), nil
}

// PowerParams are the operating conditions for router power estimation.
type PowerParams struct {
	// FrequencyHz is the router clock.
	FrequencyHz float64
	// Activity is the average switching-activity factor in (0, 1].
	Activity float64
}

// DefaultPowerParams matches a 1 GHz interposer NoC at 20% activity.
func DefaultPowerParams() PowerParams {
	return PowerParams{FrequencyHz: 1e9, Activity: 0.2}
}

// Technology-dependent electrical constants for the power model. The
// effective switched capacitance per transistor shrinks roughly with node
// pitch; leakage current per transistor is higher in advanced nodes.
const (
	// farads of switched capacitance per transistor at 65 nm; scaled by
	// (node/65).
	capPerTransistor65 = 1.3e-16
	// amps of leakage per transistor at 7 nm; scaled by (7/node).
	leakPerTransistor7 = 4e-11
)

// PowerW returns the router power in watts: dynamic alpha*C*V^2*f plus
// leakage V*I_leak, both scaled by the router's transistor count and the
// node's electrical parameters (Eq. (14) applied to the router netlist).
func PowerW(c Config, n *tech.Node, pp PowerParams) (float64, error) {
	if pp.FrequencyHz <= 0 {
		return 0, fmt.Errorf("noc: frequency must be positive, got %g", pp.FrequencyHz)
	}
	if pp.Activity <= 0 || pp.Activity > 1 {
		return 0, fmt.Errorf("noc: activity %g outside (0, 1]", pp.Activity)
	}
	tr, err := Transistors(c)
	if err != nil {
		return 0, err
	}
	capacitance := tr * capPerTransistor65 * float64(n.Nm) / 65
	dynamic := pp.Activity * capacitance * n.Vdd * n.Vdd * pp.FrequencyHz
	leak := tr * leakPerTransistor7 * 7 / float64(n.Nm) * n.Vdd
	return dynamic + leak, nil
}

// transistorsPerPHYLane sizes one serdes lane block of a die-to-die PHY.
const transistorsPerPHYLane = 40_000.0

// PHYTransistors returns the transistor count of a die-to-die PHY
// interface: one serdes lane block per 64 bits of flit width.
func PHYTransistors(c Config) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	lanes := float64((c.FlitWidthBits + 63) / 64)
	return lanes * transistorsPerPHYLane, nil
}

// PHYAreaMM2 returns the area of a die-to-die PHY interface (the
// UCIe/AIB-style IP the paper notes EMIB- and RDL-based packages embed in
// each chiplet instead of full routers). PHYs are small relative to
// routers.
func PHYAreaMM2(c Config, n *tech.Node) (float64, error) {
	tr, err := PHYTransistors(c)
	if err != nil {
		return 0, err
	}
	return n.Area(tech.Logic, tr), nil
}

// Package experiments contains one runner per figure of the ECO-CHIP
// paper's evaluation (Sections V and VI). Each runner regenerates the
// figure's underlying data series as a report.Table, exactly like the
// artifact scripts (fig7.py, fig9.py, ...) of the released tool print the
// raw data behind each plot.
//
// The Registry maps experiment ids ("fig2a", "fig7c", ...) to runners so
// the ecoexp CLI and the benchmark harness can enumerate them.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/report"
	"ecochip/internal/tech"
)

// Runner regenerates one figure's data.
type Runner func(db *tech.DB) (*report.Table, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, db *tech.DB) (*report.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(db)
}

// Options tunes how analysis-engine-backed experiments evaluate; the
// zero value reproduces Run exactly.
type Options struct {
	// Uncompiled forces the per-evaluation reference path instead of the
	// compiled parameter plans the analyses default to.
	Uncompiled bool
	// Workers caps the evaluation workers (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (done, total) evaluation ticks.
	Progress func(done, total int)
	// StatsTo, when non-nil, receives one line of compiled-plan (or, for
	// uncompiled runs, memo-cache) statistics after each analysis run.
	StatsTo io.Writer
}

// engineOpts translates the options into batch-engine options.
func (o Options) engineOpts() []engine.Option {
	opts := []engine.Option{engine.WithWorkers(o.Workers)}
	if o.Progress != nil {
		opts = append(opts, engine.WithProgress(o.Progress))
	}
	return opts
}

// OptRunner is a Runner that honors analysis Options. Experiments whose
// inner loops run on the batch engine register one in addition to their
// plain Runner; everything else is served by Run's registry.
type OptRunner func(db *tech.DB, o Options) (*report.Table, error)

var optRegistry = map[string]OptRunner{}

func registerOpt(id string, r OptRunner) {
	if _, dup := optRegistry[id]; dup {
		panic("experiments: duplicate opt id " + id)
	}
	optRegistry[id] = r
}

// RunWith executes the experiment honoring o where the experiment
// supports it; experiments without analysis knobs ignore o.
func RunWith(id string, db *tech.DB, o Options) (*report.Table, error) {
	if r, ok := optRegistry[id]; ok {
		return r(db, o)
	}
	return Run(id, db)
}

// RunAll executes every registered experiment and returns the tables in
// id order.
func RunAll(db *tech.DB) ([]*report.Table, error) {
	return RunAllCtx(context.Background(), db)
}

// RunAllCtx is RunAll with cancellation and engine options. The figure
// runners are independent of each other (each builds its own systems
// against the shared read-only database), so they fan out across the
// batch engine while the output order stays the sorted id order. The
// options and cancellation apply to this fan-out across figures — a
// cancelled context stops figures that have not started; figures
// already running manage their own inner evaluation engines and run to
// completion.
func RunAllCtx(ctx context.Context, db *tech.DB, opts ...engine.Option) ([]*report.Table, error) {
	ids := IDs()
	return engine.Run(ctx, len(ids), func(_ context.Context, i int, _ *core.Hooks) (*report.Table, error) {
		t, err := Run(ids[i], db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
		return t, nil
	}, opts...)
}

// evaluateAll batch-evaluates a slice of systems with the shared memo
// cache — the common inner loop of the per-figure tuple sweeps.
func evaluateAll(db *tech.DB, systems []*core.System) ([]*core.Report, error) {
	return engine.EvaluateBatch(context.Background(), db, systems)
}

// nodeTuples is the technology-combination sweep of Fig. 7: the first
// entry is the 7 nm monolith, the rest are (digital, memory, analog)
// chiplet node assignments.
type nodeTuple struct {
	digital, memory, analog int
	monolithic              bool
}

func (nt nodeTuple) label() string {
	if nt.monolithic {
		return fmt.Sprintf("(%d,%d,%d)-mono", nt.digital, nt.memory, nt.analog)
	}
	return fmt.Sprintf("(%d,%d,%d)", nt.digital, nt.memory, nt.analog)
}

var fig7Tuples = []nodeTuple{
	{7, 7, 7, true},
	{7, 7, 7, false},
	{7, 10, 10, false},
	{7, 10, 14, false},
	{7, 14, 10, false},
	{7, 14, 14, false},
	{10, 10, 10, false},
	{10, 14, 14, false},
	{14, 14, 14, false},
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Admission defaults: a request family admits at most
// DefaultMaxInflight concurrent requests; an arrival finding every slot
// busy queues for up to DefaultQueueTimeout before it is shed.
const (
	DefaultMaxInflight  = 64
	DefaultQueueTimeout = 100 * time.Millisecond
)

// ErrOverloaded is the sentinel all shed requests unwrap to:
// errors.Is(err, ErrOverloaded) identifies an admission rejection
// regardless of which family shed it.
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError reports one shed request: the family whose in-flight
// bound was hit and the client's suggested retry delay. HTTP maps it to
// 429 with a Retry-After header.
type OverloadError struct {
	// Family is the request family that shed ("sweep", "whatif",
	// "disaggregate", "stream").
	Family string
	// Limit is the family's in-flight bound at the time of shedding.
	Limit int
	// RetryAfter is the suggested client backoff (at least one second —
	// the Retry-After wire granularity).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %s overloaded (%d in flight), retry after %s", e.Family, e.Limit, e.RetryAfter)
}

// Unwrap makes every OverloadError match ErrOverloaded.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// GateStats snapshots one admission gate.
type GateStats struct {
	// Admitted counts requests that won a slot (including after
	// queueing).
	Admitted uint64 `json:"admitted"`
	// Shed counts requests rejected after the queue timeout.
	Shed uint64 `json:"shed"`
	// Inflight is the current number of admitted, unreleased requests.
	Inflight int `json:"inflight"`
}

// AdmissionStats snapshots all four request-family gates.
type AdmissionStats struct {
	Sweeps        GateStats `json:"sweeps"`
	WhatIfs       GateStats `json:"whatifs"`
	Disaggregates GateStats `json:"disaggregates"`
	Streams       GateStats `json:"streams"`
}

// gate is one family's admission bound: a slot semaphore plus a queue
// timeout. A nil gate admits everything (admission disabled).
type gate struct {
	family   string
	slots    chan struct{}
	timeout  time.Duration
	admitted atomic.Uint64
	shed     atomic.Uint64
}

func newGate(family string, limit int, timeout time.Duration) *gate {
	if limit < 0 {
		return nil // disabled: unbounded admission
	}
	if limit == 0 {
		limit = DefaultMaxInflight
	}
	if timeout <= 0 {
		timeout = DefaultQueueTimeout
	}
	return &gate{family: family, slots: make(chan struct{}, limit), timeout: timeout}
}

// acquire admits the request or sheds it. On success the returned
// release must be called exactly once when the request finishes; on
// shedding the error is an *OverloadError (and ctx errors pass through
// as themselves — a caller that gave up is not "overload").
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	default:
	}
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
		g.shed.Add(1)
		return nil, &OverloadError{Family: g.family, Limit: cap(g.slots), RetryAfter: retryAfter(g.timeout)}
	}
}

func (g *gate) release() { <-g.slots }

func (g *gate) stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{Admitted: g.admitted.Load(), Shed: g.shed.Load(), Inflight: len(g.slots)}
}

// retryAfter rounds the queue timeout up to whole seconds (the
// Retry-After granularity), never below one second.
func retryAfter(timeout time.Duration) time.Duration {
	d := timeout.Truncate(time.Second)
	if d < timeout {
		d += time.Second
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// admitter holds the per-family gates.
type admitter struct {
	sweep, whatif, disagg, stream *gate
}

func newAdmitter(limit int, timeout time.Duration) *admitter {
	return &admitter{
		sweep:  newGate("sweep", limit, timeout),
		whatif: newGate("whatif", limit, timeout),
		disagg: newGate("disaggregate", limit, timeout),
		stream: newGate("stream", limit, timeout),
	}
}

func (a *admitter) stats() AdmissionStats {
	return AdmissionStats{
		Sweeps:        a.sweep.stats(),
		WhatIfs:       a.whatif.stats(),
		Disaggregates: a.disagg.stats(),
		Streams:       a.stream.stats(),
	}
}

package pkgcarbon

import (
	"testing"
)

func benchEstimate(b *testing.B, arch Architecture, nc int) {
	b.Helper()
	areas := make([]float64, nc)
	for i := range areas {
		areas[i] = 500 / float64(nc)
	}
	chips := chipletsOf(7, areas...)
	p := DefaultParams(arch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(chips, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateRDL4(b *testing.B)     { benchEstimate(b, RDLFanout, 4) }
func BenchmarkEstimateEMIB4(b *testing.B)    { benchEstimate(b, SiliconBridge, 4) }
func BenchmarkEstimateActive4(b *testing.B)  { benchEstimate(b, ActiveInterposer, 4) }
func BenchmarkEstimate3DTiers4(b *testing.B) { benchEstimate(b, ThreeD, 4) }

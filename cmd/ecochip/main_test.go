package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecochip/internal/config"
)

func TestRunOnExampleDir(t *testing.T) {
	dir := t.TempDir()
	if err := config.WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(dir, 1000, 5, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"per-chiplet breakdown", "carbon summary", "best 5 of 27 node combinations",
		"digital", "memory", "analog", "ctot",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunMissingDir(t *testing.T) {
	var out strings.Builder
	if err := run(filepath.Join(t.TempDir(), "nope"), 1000, 5, &out); err == nil {
		t.Error("missing design dir should fail")
	}
}

func TestRunComboCap(t *testing.T) {
	dir := t.TempDir()
	if err := config.WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(dir, 10, 5, &out); err == nil {
		t.Error("combo cap of 10 should reject the 27-combination sweep")
	}
}

func TestRunMonolithSkipsSweep(t *testing.T) {
	dir := t.TempDir()
	arch := `{"monolithic":true,"chiplets":[{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`
	if err := os.WriteFile(filepath.Join(dir, "architecture.json"), []byte(arch), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "node_list.txt"), []byte("7\n10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(dir, 1000, 5, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "node combinations") {
		t.Error("monolith should not print a node sweep")
	}
}

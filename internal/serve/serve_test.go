package serve

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/kernel"
	"ecochip/internal/shard"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

var ga102Nodes = []int{7, 10, 14}

func ga102(t *testing.T, db *tech.DB) *core.System {
	t.Helper()
	return testcases.GA102(db, 7, 14, 10, false)
}

func samePoint(a, b explore.Point) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return math.Float64bits(a.EmbodiedKg) == math.Float64bits(b.EmbodiedKg) &&
		math.Float64bits(a.TotalKg) == math.Float64bits(b.TotalKg) &&
		math.Float64bits(a.CostUSD) == math.Float64bits(b.CostUSD) &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2)
}

func assertSamePoints(t *testing.T, want, got []explore.Point, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !samePoint(want[i], got[i]) {
			t.Fatalf("%s: point %d differs\nwant %+v\ngot  %+v", label, i, want[i], got[i])
		}
	}
}

// A served sweep — cold and warm — must carry the exact bits of a
// direct compile-and-run, and the second request must be a cache hit.
func TestSweepParityWarmAndCold(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	plan, err := explore.Compile(sys, db, ga102Nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db, Config{})
	req := &SweepRequest{System: sys, Nodes: ga102Nodes}
	cold, err := srv.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Front || cold.Total != plan.Combos() {
		t.Fatalf("response shape: front=%v total=%d, want full sweep of %d", cold.Front, cold.Total, plan.Combos())
	}
	assertSamePoints(t, want, cold.Points, "cold sweep")

	warm, err := srv.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, warm.Points, "warm sweep")
	if warm.Key != cold.Key {
		t.Fatalf("keys diverge: %s vs %s", warm.Key, cold.Key)
	}
	s := srv.Stats().Sweeps
	if s.Builds != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("sweep cache stats = %+v, want 1 build / 1 hit / 1 miss", s)
	}
}

// Objectives reduce the served sweep to the Pareto front, bit-identical
// to the plan's own front.
func TestSweepFrontParity(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	plan, err := explore.Compile(sys, db, ga102Nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, total, err := plan.ParetoFrontCtx(context.Background(),
		[]explore.Metric{func(p explore.Point) float64 { return p.EmbodiedKg }, func(p explore.Point) float64 { return p.CostUSD }})
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db, Config{})
	resp, err := srv.Sweep(context.Background(), &SweepRequest{
		System: sys, Nodes: ga102Nodes, Objectives: []string{"embodied", "cost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Front || resp.Total != total {
		t.Fatalf("response shape: front=%v total=%d, want front of %d", resp.Front, resp.Total, total)
	}
	assertSamePoints(t, want, resp.Points, "served front")
}

// A swap what-if must return the exact sweep point of the swapped
// assignment — checked against the full cold sweep, not EvalPoint.
func TestWhatIfSwapParity(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	plan, err := explore.Compile(sys, db, ga102Nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	all, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db, Config{})
	req := &WhatIfRequest{
		System: sys,
		Nodes:  ga102Nodes,
		Swap:   map[string]int{sys.Chiplets[0].Name: 10},
	}
	resp, err := srv.WhatIf(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "sweep" || resp.Point == nil {
		t.Fatalf("response = %+v, want a sweep-sourced point", resp)
	}
	assignment := []int{10, sys.Chiplets[1].NodeNm, sys.Chiplets[2].NodeNm}
	var want *explore.Point
	for i := range all {
		if reflect.DeepEqual(all[i].Nodes, assignment) {
			want = &all[i]
			break
		}
	}
	if want == nil {
		t.Fatalf("assignment %v absent from the sweep", assignment)
	}
	if !samePoint(*want, *resp.Point) {
		t.Fatalf("swap point differs\nwant %+v\ngot  %+v", *want, *resp.Point)
	}

	// Warm repeat: same bits, plan cache hit.
	again, err := srv.WhatIf(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoint(*resp.Point, *again.Point) {
		t.Fatal("warm swap diverged from cold swap")
	}
	if s := srv.Stats().Sweeps; s.Builds != 1 || s.Hits != 1 {
		t.Fatalf("sweep cache stats = %+v, want 1 build / 1 hit", s)
	}
}

// applyPerturb mirrors the server's perturbation recipe for reference
// evaluation.
func applyPerturb(sys *core.System, areaScale map[string]float64, volumeScale float64) *core.System {
	out := *sys
	out.Chiplets = append([]core.Chiplet(nil), sys.Chiplets...)
	for i := range out.Chiplets {
		if f, ok := areaScale[out.Chiplets[i].Name]; ok {
			out.Chiplets[i].Transistors *= f
		}
	}
	if volumeScale != 0 {
		vol := out.SystemVolume
		if vol == 0 {
			vol = core.DefaultVolume
		}
		out.SystemVolume = max(1, int(float64(vol)*volumeScale))
		for i := range out.Chiplets {
			parts := out.Chiplets[i].ManufacturedParts
			if parts == 0 {
				parts = core.DefaultVolume
			}
			out.Chiplets[i].ManufacturedParts = max(1, int(float64(parts)*volumeScale))
		}
	}
	return &out
}

func assertTotalsMatchReport(t *testing.T, rep *core.Report, tot *kernel.Totals, label string) {
	t.Helper()
	checks := []struct {
		name      string
		want, got float64
	}{
		{"MfgKg", rep.MfgKg, tot.MfgKg},
		{"DesignKg", rep.DesignKg, tot.DesignKg},
		{"HIKg", rep.HIKg, tot.HIKg},
		{"NREKg", rep.NREKg, tot.NREKg},
		{"OperationalKg", rep.OperationalKg, tot.OperationalKg},
		{"EmbodiedKg", rep.EmbodiedKg(), tot.EmbodiedKg()},
		{"TotalKg", rep.TotalKg(), tot.TotalKg()},
	}
	for _, c := range checks {
		if math.Float64bits(c.want) != math.Float64bits(c.got) {
			t.Fatalf("%s: %s = %g, want %g (bit-exact)", label, c.name, c.got, c.want)
		}
	}
}

// Perturbation what-ifs (area scale, volume scale, both) must carry the
// exact bits of a from-scratch evaluation of the perturbed system.
func TestWhatIfPerturbParity(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{})

	cases := []struct {
		name   string
		area   map[string]float64
		volume float64
	}{
		{"area", map[string]float64{sys.Chiplets[0].Name: 1.17}, 0},
		{"volume", nil, 3.5},
		{"both", map[string]float64{sys.Chiplets[1].Name: 0.8}, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := applyPerturb(sys, tc.area, tc.volume)
			rep, err := ref.Evaluate(db)
			if err != nil {
				t.Fatal(err)
			}
			req := &WhatIfRequest{System: sys, AreaScale: tc.area, VolumeScale: tc.volume}
			for pass, label := range []string{"cold", "warm"} {
				resp, err := srv.WhatIf(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if resp.Source != "param" || resp.Totals == nil {
					t.Fatalf("%s: response = %+v, want param-sourced totals", label, resp)
				}
				assertTotalsMatchReport(t, rep, resp.Totals, label)
				_ = pass
			}
		})
	}
	// One param plan serves every perturbation of the same system/db.
	if s := srv.Stats().Params; s.Builds != 1 || s.Hits != 5 {
		t.Fatalf("param cache stats = %+v, want 1 build / 5 hits", s)
	}
}

func TestWhatIfValidation(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{})
	bad := []struct {
		name string
		req  *WhatIfRequest
	}{
		{"no system", &WhatIfRequest{}},
		{"empty", &WhatIfRequest{System: sys}},
		{"swap and perturb", &WhatIfRequest{System: sys, Nodes: ga102Nodes,
			Swap: map[string]int{sys.Chiplets[0].Name: 10}, VolumeScale: 2}},
		{"swap without nodes", &WhatIfRequest{System: sys,
			Swap: map[string]int{sys.Chiplets[0].Name: 10}}},
		{"swap unknown chiplet", &WhatIfRequest{System: sys, Nodes: ga102Nodes,
			Swap: map[string]int{"nope": 10}}},
		{"swap outside candidates", &WhatIfRequest{System: sys, Nodes: ga102Nodes,
			Swap: map[string]int{sys.Chiplets[0].Name: 3}}},
		{"area unknown chiplet", &WhatIfRequest{System: sys,
			AreaScale: map[string]float64{"nope": 1.1}}},
		{"area non-positive", &WhatIfRequest{System: sys,
			AreaScale: map[string]float64{sys.Chiplets[0].Name: 0}}},
		{"volume negative", &WhatIfRequest{System: sys, VolumeScale: -1}},
	}
	for _, tc := range bad {
		if _, err := srv.WhatIf(context.Background(), tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// A served disaggregation — cold and warm — must match the one-shot
// explore entry point bit-for-bit.
func TestDisaggregateParityWarmAndCold(t *testing.T) {
	db := tech.Default()
	sys, err := testcases.EPYC(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := explore.DisaggregateCtx(context.Background(), sys, db)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db, Config{})
	req := &DisaggregateRequest{System: sys}
	for _, label := range []string{"cold", "warm"} {
		resp, err := srv.Disaggregate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if math.Float64bits(resp.EmbodiedKg) != math.Float64bits(want.EmbodiedKg) ||
			math.Float64bits(resp.InitialKg) != math.Float64bits(want.InitialKg) ||
			resp.Steps != want.Steps || !reflect.DeepEqual(resp.Groups, want.Groups) {
			t.Fatalf("%s run diverged\nwant %+v steps=%d groups=%v\ngot  %+v", label, want.EmbodiedKg, want.Steps, want.Groups, resp)
		}
	}
	if s := srv.Stats().Disaggregates; s.Builds != 1 || s.Hits != 1 {
		t.Fatalf("disaggregate cache stats = %+v, want 1 build / 1 hit", s)
	}
}

// A streamed front must return the exact barrier front and emit at
// least one complete snapshot.
func TestStreamFrontParity(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	plan, err := explore.Compile(sys, db, ga102Nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := plan.ParetoFrontCtx(context.Background(),
		[]explore.Metric{func(p explore.Point) float64 { return p.EmbodiedKg }, func(p explore.Point) float64 { return p.CostUSD }})
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db, Config{StreamBlockSize: 4})
	var snaps int
	var lastDone int
	resp, err := srv.StreamFront(context.Background(), &SweepRequest{
		System: sys, Nodes: ga102Nodes, Objectives: []string{"embodied", "cost"},
	}, func(s shard.FrontSnapshot) error {
		snaps++
		lastDone = s.BlocksDone
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, resp.Points, "streamed front")
	if snaps == 0 {
		t.Fatal("no snapshots emitted")
	}
	if lastDone == 0 {
		t.Fatal("final snapshot reports zero blocks done")
	}
}

func TestStreamFrontNeedsObjectives(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{})
	_, err := srv.StreamFront(context.Background(), &SweepRequest{System: sys, Nodes: ga102Nodes}, nil)
	if err == nil {
		t.Fatal("objective-less stream accepted")
	}
}

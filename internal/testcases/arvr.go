package testcases

import (
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// ARVRSeries selects the SRAM-die capacity of the AR/VR accelerator
// testcase from [55]: the 1K flavor stacks 2 MB dies, the 2K flavor 4 MB
// dies.
type ARVRSeries int

const (
	// Series1K uses 2 MB SRAM dies.
	Series1K ARVRSeries = iota
	// Series2K uses 4 MB SRAM dies.
	Series2K
)

// String names the series as in the paper ("1K" / "2K").
func (s ARVRSeries) String() string {
	if s == Series2K {
		return "2K"
	}
	return "1K"
}

// dieMB returns the per-tier SRAM capacity in megabytes.
func (s ARVRSeries) dieMB() int {
	if s == Series2K {
		return 4
	}
	return 2
}

// ARVR accelerator physical constants (7 nm, microbump 3D stacking per
// Section VI). SRAM tiers are full-footprint dies — face-to-face stacking
// needs matched die outlines, so the tile pads its array out to the
// compute die's footprint (1K) or twice it (2K, double-capacity macro).
const (
	// arvrComputeMM2 is the compute-die area at 7 nm.
	arvrComputeMM2 = 4.0
	// arvrSRAM1KMM2 and arvrSRAM2KMM2 are the per-tier SRAM die areas.
	arvrSRAM1KMM2 = 4.0
	arvrSRAM2KMM2 = 8.0
)

// ARVRConfig is one accelerator design point of Fig. 13.
type ARVRConfig struct {
	Series ARVRSeries
	// Tiers is the number of stacked SRAM dies (1 - 4).
	Tiers int
}

// Name renders the paper's naming convention, e.g. "3D-1K-4MB" for two
// stacked 2 MB tiers (single-tier points are the 2D flavor).
func (c ARVRConfig) Name() string {
	dim := "3D"
	if c.Tiers == 1 {
		dim = "2D"
	}
	return fmt.Sprintf("%s-%s-%dMB", dim, c.Series, c.TotalMB())
}

// TotalMB is the stacked SRAM capacity.
func (c ARVRConfig) TotalMB() int { return c.Series.dieMB() * c.Tiers }

// ARVRConfigs lists the Fig. 13 sweep: both series, 1-4 tiers.
func ARVRConfigs() []ARVRConfig {
	var out []ARVRConfig
	for _, s := range []ARVRSeries{Series1K, Series2K} {
		for tiers := 1; tiers <= 4; tiers++ {
			out = append(out, ARVRConfig{Series: s, Tiers: tiers})
		}
	}
	return out
}

// Performance is the synthetic stand-in for the latency/power table of
// [55]. The trends are the ones Fig. 13 relies on: adding SRAM tiers cuts
// inference latency (fewer off-chip accesses) and improves energy
// efficiency (lower operating power), while the added silicon grows
// embodied carbon.
type Performance struct {
	// LatencyMS is the inference latency in milliseconds.
	LatencyMS float64
	// PowerW is the average operating power in watts.
	PowerW float64
}

// ARVRPerformance returns the synthetic performance point of a config.
func ARVRPerformance(c ARVRConfig) Performance {
	// Latency shrinks with diminishing returns in total capacity;
	// the 2K series starts faster thanks to bigger tiles.
	base := 1.00
	if c.Series == Series2K {
		base = 0.85
	}
	latency := base / (1 + 0.30*float64(c.Tiers-1))
	// Power falls as DRAM traffic is displaced by on-stack SRAM.
	power := (1.20 - 0.04*float64(c.Tiers-1))
	if c.Series == Series2K {
		power *= 1.08 // larger tiles burn slightly more leakage
	}
	return Performance{LatencyMS: latency, PowerW: power}
}

// ARVR builds the accelerator system: one 7 nm compute die with
// c.Tiers SRAM dies stacked on top via microbumps. A 2-year lifetime and
// the synthetic power draw feed the operational model (Fig. 13 estimates
// C_tot over 2 years with E_use from [55]).
func ARVR(db *tech.DB, c ARVRConfig) (*core.System, error) {
	if c.Tiers < 1 || c.Tiers > 4 {
		return nil, fmt.Errorf("testcases: AR/VR tiers %d outside [1, 4]", c.Tiers)
	}
	ref := refNode(db, 7)
	chiplets := []core.Chiplet{
		core.BlockFromArea("compute", tech.Logic, arvrComputeMM2, ref, 7),
	}
	sramMM2 := arvrSRAM1KMM2
	if c.Series == Series2K {
		sramMM2 = arvrSRAM2KMM2
	}
	for i := 0; i < c.Tiers; i++ {
		tile := core.BlockFromArea(fmt.Sprintf("sram%d", i), tech.Memory, sramMM2, ref, 7)
		tile.Reused = true // commodity SRAM tiles, pre-designed
		chiplets = append(chiplets, tile)
	}
	perf := ARVRPerformance(c)
	pkg := pkgcarbon.DefaultParams(pkgcarbon.ThreeD)
	pkg.Bond = pkgcarbon.Microbump
	return &core.System{
		Name:      c.Name(),
		Chiplets:  chiplets,
		Packaging: pkg,
		Mfg:       mfg.DefaultParams(),
		Design:    defaultDesign(),
		Operation: &opcarbon.Spec{
			DutyCycle:       0.20,
			LifetimeYears:   2,
			CarbonIntensity: 0.700,
			Elec: &opcarbon.Electrical{
				Vdd:      0.70,
				Activity: 0.2,
				// Back out C from the synthetic power at 800 MHz so
				// Eq. (14) reproduces the [55] power figure.
				CapF:   perf.PowerW / (0.2 * 0.70 * 0.70 * 800e6),
				FreqHz: 800e6,
			},
		},
	}, nil
}

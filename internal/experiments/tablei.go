package experiments

import (
	"fmt"

	"ecochip/internal/report"
	"ecochip/internal/tech"
)

func init() {
	register("tbl1", TableI)
}

// TableI renders the built-in per-node parameter database and verifies
// every value sits inside the ranges of Table I of the paper.
func TableI(db *tech.DB) (*report.Table, error) {
	t := report.New("tbl1", "built-in technology database vs Table I ranges",
		"node_nm", "d0_per_cm2", "logic_mtr_mm2", "mem_mtr_mm2", "analog_mtr_mm2",
		"epa_kwh_cm2", "gas_kg_cm2", "eta_eq", "eta_eda", "vdd_v", "epla_rdl", "epla_bridge")
	for _, nm := range db.Sizes() {
		n := db.MustGet(nm)
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("node %dnm violates Table I: %w", nm, err)
		}
		t.AddRow(report.I(nm), report.F(n.DefectDensity),
			report.F(n.Density[tech.Logic]), report.F(n.Density[tech.Memory]), report.F(n.Density[tech.Analog]),
			report.F(n.EPA), report.F(n.GasCFP), report.F(n.EquipEfficiency), report.F(n.EDAProductivity),
			report.F(n.Vdd), report.F(n.EPLARDL), report.F(n.EPLABridge))
	}
	return t, nil
}

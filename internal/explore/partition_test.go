package explore

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// fineGrained builds a system of many small same-node logic blocks plus
// a memory and an analog block — a granularity where merging should pay.
func fineGrained(logicBlocks int, blockMM2 float64) *core.System {
	ref := db().MustGet(7)
	var chiplets []core.Chiplet
	for i := 0; i < logicBlocks; i++ {
		chiplets = append(chiplets, core.BlockFromArea(
			"logic"+string(rune('a'+i)), tech.Logic, blockMM2, ref, 7))
	}
	chiplets = append(chiplets,
		core.BlockFromArea("memory", tech.Memory, 60, ref, 14),
		core.BlockFromArea("analog", tech.Analog, 30, ref, 10),
	)
	return &core.System{
		Name:      "fine",
		Chiplets:  chiplets,
		Packaging: pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:       mfg.DefaultParams(),
		Design:    descarbon.DefaultParams(),
	}
}

func TestDisaggregateErrors(t *testing.T) {
	mono := testcases.GA102(db(), 7, 7, 7, true)
	if _, err := Disaggregate(mono, db()); err == nil {
		t.Error("monolith input should fail")
	}
	bad := fineGrained(2, 20)
	bad.Chiplets[0].Transistors = 0
	if _, err := Disaggregate(bad, db()); err == nil {
		t.Error("invalid system should fail")
	}
}

// Many tiny blocks: the per-chiplet packaging overhead dominates, so the
// optimizer must merge aggressively and beat the starting point.
func TestMergesTinyBlocks(t *testing.T) {
	base := fineGrained(6, 2) // 6 x 2mm^2 logic slivers: per-chiplet overhead dominates
	plan, err := Disaggregate(base, db())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps == 0 {
		t.Fatal("tiny blocks should trigger merges")
	}
	if plan.EmbodiedKg >= plan.InitialKg {
		t.Errorf("optimized carbon %.2f should beat initial %.2f", plan.EmbodiedKg, plan.InitialKg)
	}
	if len(plan.System.Chiplets) >= 8 {
		t.Errorf("expected fewer chiplets after merging, still have %d", len(plan.System.Chiplets))
	}
	// Group bookkeeping covers every original block exactly once.
	seen := map[string]int{}
	for _, g := range plan.Groups {
		for _, name := range g {
			seen[name]++
		}
	}
	if len(seen) != 8 {
		t.Errorf("groups should cover 8 blocks, got %d", len(seen))
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("block %s appears %d times", name, n)
		}
	}
}

// Huge blocks: merging would wreck yield, so the optimizer must leave
// them alone.
func TestKeepsHugeBlocksApart(t *testing.T) {
	base := fineGrained(3, 300) // 3 x 300mm^2 logic slabs
	plan, err := Disaggregate(base, db())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups {
		if len(g) > 1 && strings.HasPrefix(g[0], "logic") {
			t.Errorf("300mm^2 slabs should not merge: %v", g)
		}
	}
	if plan.EmbodiedKg > plan.InitialKg {
		t.Error("plan must never be worse than the starting point")
	}
}

// Different types never merge; reused IP never merges.
func TestMergeConstraints(t *testing.T) {
	a := core.Chiplet{Name: "a", Type: tech.Logic}
	b := core.Chiplet{Name: "b", Type: tech.Memory}
	if mergeable(a, b) {
		t.Error("logic and memory must not merge")
	}
	c := core.Chiplet{Name: "c", Type: tech.Logic, Reused: true}
	if mergeable(a, c) {
		t.Error("reused IP must not merge")
	}
	if !mergeable(a, core.Chiplet{Name: "d", Type: tech.Logic}) {
		t.Error("same-type fresh blocks should merge")
	}
}

// Merging settles on the most advanced node of the pair.
func TestMergeNodeChoice(t *testing.T) {
	a := core.Chiplet{Name: "a", Type: tech.Logic, Transistors: 1e9, NodeNm: 14}
	b := core.Chiplet{Name: "b", Type: tech.Logic, Transistors: 2e9, NodeNm: 7}
	m := merge(a, b)
	if m.NodeNm != 7 {
		t.Errorf("merged node = %d, want 7", m.NodeNm)
	}
	if m.Transistors != 3e9 {
		t.Errorf("merged transistors = %g, want 3e9", m.Transistors)
	}
}

// Determinism: same input, same plan.
func TestDisaggregateDeterministic(t *testing.T) {
	p1, err := Disaggregate(fineGrained(5, 15), db())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Disaggregate(fineGrained(5, 15), db())
	if err != nil {
		t.Fatal(err)
	}
	if p1.EmbodiedKg != p2.EmbodiedKg || p1.Steps != p2.Steps || len(p1.Groups) != len(p2.Groups) {
		t.Error("Disaggregate is not deterministic")
	}
}

// The base system must not be mutated.
func TestDisaggregateDoesNotMutate(t *testing.T) {
	base := fineGrained(4, 12)
	before := len(base.Chiplets)
	name0 := base.Chiplets[0].Name
	if _, err := Disaggregate(base, db()); err != nil {
		t.Fatal(err)
	}
	if len(base.Chiplets) != before || base.Chiplets[0].Name != name0 {
		t.Error("Disaggregate mutated its input")
	}
}

// A retained search must hand back bit-identical Plans run after run —
// the serving contract: a warm re-run serves the same answer as the
// cold one, from memos instead of recomputation.
func TestDisaggregateSearchWarmRunsBitIdentical(t *testing.T) {
	base := fineGrained(8, 3)
	d := db()
	ds, err := CompileDisaggregate(base, d)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := DisaggregateCtx(context.Background(), base, d)
	if err != nil {
		t.Fatal(err)
	}
	var prevHits uint64
	for run := 0; run < 3; run++ {
		got, err := ds.Run(context.Background())
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if math.Float64bits(got.EmbodiedKg) != math.Float64bits(cold.EmbodiedKg) ||
			math.Float64bits(got.InitialKg) != math.Float64bits(cold.InitialKg) {
			t.Fatalf("run %d: EmbodiedKg/InitialKg = %v/%v, want %v/%v (bit-exact)",
				run, got.EmbodiedKg, got.InitialKg, cold.EmbodiedKg, cold.InitialKg)
		}
		if got.Steps != cold.Steps || !reflect.DeepEqual(got.Groups, cold.Groups) {
			t.Fatalf("run %d: trajectory diverged: %d steps %v, want %d steps %v",
				run, got.Steps, got.Groups, cold.Steps, cold.Groups)
		}
		hits := ds.Stats().MergedCellHits
		if run > 0 && hits == prevHits {
			t.Errorf("run %d: no merged-cell memo hits on a warm re-run", run)
		}
		prevHits = hits
	}
	// Warm runs must add no misses: the whole candidate table is served
	// from the retained arenas.
	s := ds.Stats()
	if s.MergedCellMisses != cold.Stats.MergedCellMisses {
		t.Errorf("warm runs recomputed merged cells: %d misses, want %d (cold run only)",
			s.MergedCellMisses, cold.Stats.MergedCellMisses)
	}
}

// Concurrent Runs serialize on the retained state and each returns the
// same bits.
func TestDisaggregateSearchConcurrentRuns(t *testing.T) {
	base := fineGrained(6, 2)
	d := db()
	ds, err := CompileDisaggregate(base, d)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ds.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ds.Run(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if math.Float64bits(got.EmbodiedKg) != math.Float64bits(ref.EmbodiedKg) {
				t.Errorf("EmbodiedKg = %v, want %v", got.EmbodiedKg, ref.EmbodiedKg)
			}
		}()
	}
	wg.Wait()
}

package main

import (
	"strings"
	"testing"
)

// The sweep -progress output must surface the incremental-floorplan
// reuse statistics next to the compiled-plan counters (the example
// design is multi-chiplet, so the packaging estimator runs).
func TestRunSweepProgressFloorplanStats(t *testing.T) {
	cfg := cfgFor("sweep")
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(exampleDir(t), cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "incremental floorplan:") {
		t.Errorf("progress run missing incremental-floorplan statistics:\n%s", stats.String())
	}
}

// The tornado -progress output includes the parameter plan's floorplan
// reuse counter via ParamStats.String.
func TestRunTornadoProgressFloorplanReuses(t *testing.T) {
	cfg := cfgFor("tornado")
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(exampleDir(t), cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "floorplan reuses") {
		t.Errorf("tornado progress run missing floorplan-reuse statistics:\n%s", stats.String())
	}
}

package energy

import (
	"math"
	"testing"
)

func TestIntensityKnown(t *testing.T) {
	coal, err := Intensity("coal")
	if err != nil || coal != 0.700 {
		t.Errorf("Intensity(coal) = %g, %v", coal, err)
	}
	// Case-insensitive.
	if v, err := Intensity("COAL"); err != nil || v != 0.700 {
		t.Errorf("Intensity(COAL) = %g, %v", v, err)
	}
	if _, err := Intensity("fusion"); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestAllWithinTableI(t *testing.T) {
	for _, s := range Sources() {
		if s.KgPerKWh < 0.030 || s.KgPerKWh > 0.700 {
			t.Errorf("source %s intensity %g outside Table I range [0.030, 0.700]", s.Name, s.KgPerKWh)
		}
		if s.Description == "" {
			t.Errorf("source %s lacks a description", s.Name)
		}
	}
}

func TestSourcesSortedDirtiestFirst(t *testing.T) {
	srcs := Sources()
	for i := 1; i < len(srcs); i++ {
		if srcs[i].KgPerKWh > srcs[i-1].KgPerKWh {
			t.Error("Sources() should sort dirtiest first")
		}
	}
	if srcs[0].Name != "coal" {
		t.Errorf("dirtiest source = %s, want coal", srcs[0].Name)
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Errorf("catalog should have 12 sources, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Error("Names() should be sorted")
		}
	}
}

func TestMix(t *testing.T) {
	// Half coal, half wind: (0.7 + 0.03)/2.
	got, err := Mix(map[string]float64{"coal": 0.5, "wind": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.365) > 1e-12 {
		t.Errorf("Mix = %g, want 0.365", got)
	}
}

func TestMixErrors(t *testing.T) {
	cases := []map[string]float64{
		nil,
		{"coal": 0.5},                // does not sum to 1
		{"coal": 0.5, "wind": 0.6},   // sums above 1
		{"coal": 1.0, "fusion": 0.0}, // non-positive share
		{"fusion": 1.0},              // unknown source
		{"coal": -0.5, "wind": 1.5},  // negative share
	}
	for i, m := range cases {
		if _, err := Mix(m); err == nil {
			t.Errorf("mix case %d should fail: %v", i, m)
		}
	}
}

package main

import (
	"context"
	"errors"
	"math"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ecochip/internal/config"
	"ecochip/internal/cost"
	"ecochip/internal/shard"
	"ecochip/internal/shard/netx"
	"ecochip/internal/tech"
)

// syncBuilder is a strings.Builder safe for the server goroutine.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon's run() seam under ctx and returns the
// bound address plus the exit-error channel.
func startDaemon(t *testing.T, ctx context.Context, out *syncBuilder) (string, chan error) {
	return startDaemonToken(t, ctx, "", out)
}

func startDaemonToken(t *testing.T, ctx context.Context, token string, out *syncBuilder) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", 0, 5*time.Second, token, false, out, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never announced readiness")
	}
	return "", nil
}

// The daemon must serve leases end to end and drain cleanly on ctx
// cancellation (the signal path in main).
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuilder
	addr, done := startDaemon(t, ctx, &out)

	// Drive a real sweep through it.
	dir := t.TempDir()
	if err := config.WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	db := tech.Default()
	system, nodes, err := config.LoadSystem(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	cp := cost.DefaultParams()
	cat := shard.NewCatalog()
	key, err := cat.RegisterSweep(system, db, nodes, cp)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cat.Plan(key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reg := netx.NewRegistry()
	if _, err := reg.AddSweep(system, db, nodes, cp); err != nil {
		t.Fatal(err)
	}
	cl := netx.DialTransport(addr, reg, netx.Options{})
	defer cl.Close()
	co := shard.NewCoordinator(plan, key, []shard.Transport{cl}, shard.Config{Seed: 1})
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("daemon sweep returned %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label() != want[i].Label() ||
			math.Float64bits(got[i].TotalKg) != math.Float64bits(want[i].TotalKg) ||
			math.Float64bits(got[i].CostUSD) != math.Float64bits(want[i].CostUSD) {
			t.Fatalf("point %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if st := co.Stats(); st.Wire.IsZero() || st.BlocksLocal != 0 {
		t.Fatalf("sweep did not go over the wire: %+v", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "drained") {
		t.Errorf("daemon output missing lifecycle lines:\n%s", out.String())
	}
}

// With -auth-token set, the daemon must reject coordinators that don't
// present the secret and serve the ones that do.
func TestDaemonAuthToken(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuilder
	addr, _ := startDaemonToken(t, ctx, "swordfish", &out)

	dir := t.TempDir()
	if err := config.WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	db := tech.Default()
	system, nodes, err := config.LoadSystem(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	cp := cost.DefaultParams()
	cat := shard.NewCatalog()
	key, err := cat.RegisterSweep(system, db, nodes, cp)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cat.Plan(key)
	if err != nil {
		t.Fatal(err)
	}
	reg := netx.NewRegistry()
	if _, err := reg.AddSweep(system, db, nodes, cp); err != nil {
		t.Fatal(err)
	}

	bad := netx.DialTransport(addr, reg, netx.Options{})
	defer bad.Close()
	lease := shard.Lease{Key: key, Seq: 1, Blocks: shard.BlockRange{Lo: 0, Hi: 1},
		BlockSize: 16, PlanPoints: plan.Combos(), Mode: shard.ModePoints,
		Deadline: time.Now().Add(5 * time.Second)}
	err = bad.Execute(context.Background(), lease, func(shard.BlockResult) error { return nil })
	if !errors.Is(err, shard.ErrAuthFailed) {
		t.Fatalf("tokenless coordinator: %v, want ErrAuthFailed", err)
	}

	good := netx.DialTransport(addr, reg, netx.Options{AuthToken: "swordfish"})
	defer good.Close()
	co := shard.NewCoordinator(plan, key, []shard.Transport{good}, shard.Config{Seed: 1})
	if _, err := co.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := co.Stats(); st.Wire.IsZero() {
		t.Fatalf("authed sweep did not go over the wire: %+v", st)
	}
}

// The daemon must exit on SIGTERM — the exact signal wiring main uses.
func TestDaemonStopsOnSIGTERM(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var out syncBuilder
	_, done := startDaemon(t, ctx, &out)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon ignored SIGTERM")
	}
}

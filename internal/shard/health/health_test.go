package health

import (
	"sync"
	"testing"
	"time"
)

func at(s int) time.Time { return time.Unix(int64(s), 0) }

func TestConsecutiveFailuresTripAndProbeCycle(t *testing.T) {
	tr := New(Config{TripAfter: 3, ProbeAfter: 10 * time.Second, MaxProbes: 2})
	if got := tr.State(); got != Healthy {
		t.Fatalf("fresh tracker state = %v, want healthy", got)
	}
	if tripped := tr.Failure(at(0)); tripped {
		t.Fatalf("first failure tripped the breaker")
	}
	if got := tr.State(); got != Degraded {
		t.Fatalf("state after one failure = %v, want degraded", got)
	}
	tr.Failure(at(1))
	if tripped := tr.Failure(at(2)); !tripped {
		t.Fatalf("third consecutive failure did not trip (TripAfter=3)")
	}
	if got := tr.State(); got != Quarantined {
		t.Fatalf("state after trip = %v, want quarantined", got)
	}

	// Quarantine refuses leases until the probe interval lapses.
	if ok, wait := tr.Allow(at(3)); ok || wait <= 0 {
		t.Fatalf("Allow during quarantine = (%v, %v), want refusal with positive wait", ok, wait)
	}
	// Probe due: exactly one caller claims the half-open slot.
	ok, _ := tr.Allow(at(13))
	if !ok {
		t.Fatalf("Allow after probe interval refused the probe")
	}
	if got := tr.State(); got != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if ok, _ := tr.Allow(at(13)); ok {
		t.Fatalf("second Allow during half-open probe granted a lease")
	}

	// Probe succeeds: breaker closes, full recovery.
	tr.Success(at(14), 5*time.Millisecond)
	if got := tr.State(); got != Healthy {
		t.Fatalf("state after probe success = %v, want healthy", got)
	}
	c := tr.Counters()
	if c.Trips != 1 || c.Probes != 1 || c.Closes != 1 {
		t.Fatalf("counters after open→half-open→close = %+v, want 1 trip, 1 probe, 1 close", c)
	}
}

func TestFailedProbesBackOffAndExhaust(t *testing.T) {
	tr := New(Config{TripAfter: 2, ProbeAfter: 10 * time.Second, ProbeAfterMax: time.Hour, MaxProbes: 2})
	tr.Failure(at(0))
	tr.Failure(at(0)) // trips
	if tr.Exhausted() {
		t.Fatalf("exhausted before any probe")
	}

	// First probe fails: re-quarantined with a doubled interval.
	if ok, _ := tr.Allow(at(11)); !ok {
		t.Fatalf("first probe refused")
	}
	tr.Failure(at(11))
	if got := tr.State(); got != Quarantined {
		t.Fatalf("state after failed probe = %v, want quarantined", got)
	}
	if ok, _ := tr.Allow(at(12)); ok {
		t.Fatalf("probe granted before the doubled interval lapsed")
	}
	if ok, _ := tr.Allow(at(32)); !ok {
		t.Fatalf("second probe refused after doubled interval")
	}
	tr.Failure(at(32))
	if !tr.Exhausted() {
		t.Fatalf("not exhausted after MaxProbes=2 failed probes")
	}
	if !tr.Retire() {
		t.Fatalf("first Retire returned false")
	}
	if tr.Retire() {
		t.Fatalf("second Retire returned true; want once-guard")
	}
}

func TestErrorRateTrip(t *testing.T) {
	tr := New(Config{TripAfter: 100, Window: 8, MinSamples: 8, TripRate: 0.5, ProbeAfter: time.Second})
	// Alternate success/failure: never 100 consecutive failures, but the
	// windowed rate reaches 0.5 once MinSamples outcomes exist.
	var tripped bool
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			tr.Success(at(i), time.Millisecond)
		} else {
			tripped = tr.Failure(at(i)) || tripped
		}
	}
	if !tripped {
		t.Fatalf("50%% windowed error rate over MinSamples did not trip")
	}
	if got := tr.State(); got != Quarantined {
		t.Fatalf("state after rate trip = %v, want quarantined", got)
	}
}

func TestErrorRateNeedsMinSamples(t *testing.T) {
	tr := New(Config{TripAfter: 100, Window: 8, MinSamples: 8, TripRate: 0.5})
	// One failure in two samples is a 50% rate, but below MinSamples.
	tr.Success(at(0), time.Millisecond)
	if tripped := tr.Failure(at(1)); tripped {
		t.Fatalf("breaker tripped below MinSamples")
	}
	if got := tr.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded", got)
	}
}

func TestDegradedRecoversOnSuccess(t *testing.T) {
	tr := New(Config{TripAfter: 4, Window: 8, TripRate: 0.5})
	tr.Failure(at(0))
	if got := tr.State(); got != Degraded {
		t.Fatalf("state after failure = %v, want degraded", got)
	}
	tr.Success(at(1), time.Millisecond)
	tr.Success(at(2), time.Millisecond)
	if got := tr.State(); got != Healthy {
		t.Fatalf("state after recovery = %v, want healthy", got)
	}
	if n := tr.ConsecutiveFailures(); n != 0 {
		t.Fatalf("consecutive failures after success = %d, want 0", n)
	}
}

func TestEWMATracksLatency(t *testing.T) {
	tr := New(Config{Alpha: 0.5})
	if got := tr.EWMA(); got != 0 {
		t.Fatalf("EWMA before samples = %v, want 0", got)
	}
	tr.Success(at(0), 100*time.Millisecond)
	if got := tr.EWMA(); got != 100*time.Millisecond {
		t.Fatalf("EWMA after first sample = %v, want exactly the sample", got)
	}
	tr.Success(at(1), 200*time.Millisecond)
	if got := tr.EWMA(); got != 150*time.Millisecond {
		t.Fatalf("EWMA after 100ms,200ms at alpha 0.5 = %v, want 150ms", got)
	}
}

func TestEwmaStandalone(t *testing.T) {
	e := NewEwma(0.5)
	if e.Value() != 0 || e.Samples() != 0 {
		t.Fatalf("fresh Ewma = (%v, %d), want zero", e.Value(), e.Samples())
	}
	e.Observe(40 * time.Millisecond)
	e.Observe(80 * time.Millisecond)
	if got := e.Value(); got != 60*time.Millisecond {
		t.Fatalf("Ewma after 40ms,80ms at alpha 0.5 = %v, want 60ms", got)
	}
	if e.Samples() != 2 {
		t.Fatalf("Samples = %d, want 2", e.Samples())
	}
}

func TestConcurrentProbeClaim(t *testing.T) {
	tr := New(Config{TripAfter: 1, ProbeAfter: time.Millisecond})
	tr.Failure(at(0)) // trips immediately
	// Many goroutines race for the single half-open slot well past the
	// probe deadline; exactly one must win.
	var wg sync.WaitGroup
	wins := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := tr.Allow(at(10)); ok {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines claimed the half-open probe, want exactly 1", n)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Healthy: "healthy", Degraded: "degraded", Quarantined: "quarantined", HalfOpen: "half-open"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// Package testcases provides the four industry systems the ECO-CHIP
// paper evaluates (Section IV(2)):
//
//   - NVIDIA GA102 GPU (2020): a large monolithic die; disaggregated into
//     a 3-chiplet {digital, memory, analog} system per Section V, or
//     further into N_c digital chiplets for Figs. 9/10/15b.
//   - Apple A15 SoC (2021): a small mobile processor, 3-chiplet split.
//   - Intel Emerald Rapids (EMR): a 2-chiplet server CPU joined by EMIB,
//     evaluated in its released architecture.
//   - AR/VR 3D accelerator [55]: a compute die with 1-4 stacked SRAM
//     tiers (1K = 2 MB per tier, 2K = 4 MB per tier), used for the
//     carbon-delay/power/area product curves of Fig. 13.
//
// Die-area breakdowns are anchored at a 7 nm (EMR: 10 nm) reference node
// from the figures quoted in the paper (e.g. the GA102's 500 mm^2 digital
// logic block) and converted to transistor budgets via the technology
// database, so each block can be re-targeted to any node during
// design-space exploration. Latency/power series for the AR/VR testcase
// are synthetic stand-ins for [55] with the properties the paper uses:
// latency falls and energy efficiency improves as tiers are added.
package testcases

import (
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// Reference block areas (mm^2) at the anchor nodes.
const (
	// GA102 at 7 nm: 500 mm^2 digital (Section V-B), memory and analog
	// filling out the ~628 mm^2 die.
	GA102DigitalMM2 = 500.0
	GA102MemoryMM2  = 80.0
	GA102AnalogMM2  = 48.0

	// A15 at 7 nm equivalent (~125 mm^2 total).
	A15DigitalMM2 = 75.0
	A15MemoryMM2  = 32.0
	A15AnalogMM2  = 18.0

	// EMR: two ~763 mm^2 compute chiplets at Intel 7 (10 nm class).
	EMRChipletMM2 = 763.0
)

// Operational profiles from Section V.
var (
	// GA102Operation: the paper's E_use = 228 kWh/yr for the 450 W GPU,
	// 2-year lifetime, coal grid.
	GA102Operation = opcarbon.Spec{
		DutyCycle:       0.20,
		LifetimeYears:   2,
		CarbonIntensity: 0.700,
		AnnualEnergyKWh: 228,
	}
	// EMROperation: profiled server-class CPU (~120 kWh/yr at a 15%
	// average duty), 5-year lifetime.
	EMROperation = opcarbon.Spec{
		DutyCycle:       0.15,
		LifetimeYears:   5,
		CarbonIntensity: 0.700,
		AnnualEnergyKWh: 120,
	}
	// A15Operation: battery-derived E_use (Section III-F): a 12.7 Wh
	// battery at 85% wall efficiency, 250 SoC-attributable charge
	// cycles per year (the SoC draws roughly two thirds of the phone's
	// battery), charged from an average consumer grid. The resulting
	// ~80% embodied / ~20% operational split matches the Fig. 8(b)
	// discussion and the Apple-report sanity check of Section VII.
	A15Operation = opcarbon.Spec{
		DutyCycle:       0.20,
		LifetimeYears:   2,
		CarbonIntensity: 0.300,
		Battery:         &opcarbon.Battery{CapacityWh: 12.7, ChargesPerYear: 250, ChargerEfficiency: 0.85},
	}
)

func refNode(db *tech.DB, nm int) *tech.Node { return db.MustGet(nm) }

// GA102 builds the 3-chiplet GA102 system with the given per-block nodes
// (digital, memory, analog) and RDL-fanout packaging. Passing the same
// node for all three with monolithic=true yields the paper's (7,7,7)
// monolith baseline.
func GA102(db *tech.DB, digitalNm, memoryNm, analogNm int, monolithic bool) *core.System {
	ref := refNode(db, 7)
	s := &core.System{
		Name: fmt.Sprintf("GA102(%d,%d,%d)", digitalNm, memoryNm, analogNm),
		Chiplets: []core.Chiplet{
			core.BlockFromArea("digital", tech.Logic, GA102DigitalMM2, ref, digitalNm),
			core.BlockFromArea("memory", tech.Memory, GA102MemoryMM2, ref, memoryNm),
			core.BlockFromArea("analog", tech.Analog, GA102AnalogMM2, ref, analogNm),
		},
		Monolithic: monolithic,
		Packaging:  pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:        mfg.DefaultParams(),
		Design:     defaultDesign(),
		Operation:  specCopy(GA102Operation),
	}
	if monolithic {
		s.Name = fmt.Sprintf("GA102-monolith(%d)", digitalNm)
	}
	return s
}

// GA102Split builds the GA102 with its 500 mm^2 digital block split into
// nc equal chiplets (Figs. 9, 10, 15b); memory stays at memoryNm and
// analog at analogNm. nc = 0 keeps the digital block whole.
func GA102Split(db *tech.DB, nc int, arch pkgcarbon.Architecture) (*core.System, error) {
	if nc < 1 {
		return nil, fmt.Errorf("testcases: digital split count must be >= 1, got %d", nc)
	}
	ref := refNode(db, 7)
	chiplets := make([]core.Chiplet, 0, nc+2)
	for i := 0; i < nc; i++ {
		chiplets = append(chiplets, core.BlockFromArea(
			fmt.Sprintf("digital%d", i), tech.Logic, GA102DigitalMM2/float64(nc), ref, 7))
	}
	chiplets = append(chiplets,
		core.BlockFromArea("memory", tech.Memory, GA102MemoryMM2, ref, 10),
		core.BlockFromArea("analog", tech.Analog, GA102AnalogMM2, ref, 14),
	)
	return &core.System{
		Name:      fmt.Sprintf("GA102-%dchiplet-%s", nc+2, arch),
		Chiplets:  chiplets,
		Packaging: pkgcarbon.DefaultParams(arch),
		Mfg:       mfg.DefaultParams(),
		Design:    defaultDesign(),
		Operation: specCopy(GA102Operation),
	}, nil
}

// GA102DigitalOnly builds just the 500 mm^2 digital block split into nc
// chiplets under the given packaging architecture — the Fig. 9 workload.
func GA102DigitalOnly(db *tech.DB, nc int, arch pkgcarbon.Architecture) (*core.System, error) {
	if nc < 1 {
		return nil, fmt.Errorf("testcases: chiplet count must be >= 1, got %d", nc)
	}
	ref := refNode(db, 7)
	chiplets := make([]core.Chiplet, nc)
	for i := 0; i < nc; i++ {
		chiplets[i] = core.BlockFromArea(
			fmt.Sprintf("digital%d", i), tech.Logic, GA102DigitalMM2/float64(nc), ref, 7)
	}
	return &core.System{
		Name:      fmt.Sprintf("GA102-digital-%dx-%s", nc, arch),
		Chiplets:  chiplets,
		Packaging: pkgcarbon.DefaultParams(arch),
		Mfg:       mfg.DefaultParams(),
		Design:    defaultDesign(),
	}, nil
}

// A15 builds the 3-chiplet A15 mobile SoC with RDL-fanout packaging.
func A15(db *tech.DB, digitalNm, memoryNm, analogNm int, monolithic bool) *core.System {
	ref := refNode(db, 7)
	s := &core.System{
		Name: fmt.Sprintf("A15(%d,%d,%d)", digitalNm, memoryNm, analogNm),
		Chiplets: []core.Chiplet{
			core.BlockFromArea("digital", tech.Logic, A15DigitalMM2, ref, digitalNm),
			core.BlockFromArea("memory", tech.Memory, A15MemoryMM2, ref, memoryNm),
			core.BlockFromArea("analog", tech.Analog, A15AnalogMM2, ref, analogNm),
		},
		Monolithic: monolithic,
		Packaging:  pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:        mfg.DefaultParams(),
		Design:     defaultDesign(),
		Operation:  specCopy(A15Operation),
	}
	if monolithic {
		s.Name = fmt.Sprintf("A15-monolith(%d)", digitalNm)
	}
	return s
}

// EMR builds the Emerald Rapids 2-chiplet EMIB system at the given node
// (the released part is Intel 7, 10 nm class). monolithic merges both
// compute chiplets into one giant die for the Fig. 8(a) comparison.
func EMR(db *tech.DB, nodeNm int, monolithic bool) *core.System {
	ref := refNode(db, 10)
	s := &core.System{
		Name: fmt.Sprintf("EMR(%d)", nodeNm),
		Chiplets: []core.Chiplet{
			core.BlockFromArea("compute0", tech.Logic, EMRChipletMM2, ref, nodeNm),
			core.BlockFromArea("compute1", tech.Logic, EMRChipletMM2, ref, nodeNm),
		},
		Monolithic: monolithic,
		Packaging:  pkgcarbon.DefaultParams(pkgcarbon.SiliconBridge),
		Mfg:        mfg.DefaultParams(),
		Design:     defaultDesign(),
		Operation:  specCopy(EMROperation),
	}
	if monolithic {
		s.Name = fmt.Sprintf("EMR-monolith(%d)", nodeNm)
	}
	return s
}

func defaultDesign() descarbon.Params { return descarbon.DefaultParams() }

func specCopy(s opcarbon.Spec) *opcarbon.Spec {
	c := s
	if s.Battery != nil {
		b := *s.Battery
		c.Battery = &b
	}
	return &c
}

package roadmap

import (
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

func db() *tech.DB { return tech.Default() }

// product builds a 3-chiplet system whose digital block changes per
// generation (newGen) while IO and memory chiplets carry over.
func product(gen int, digitalTransistors float64) *core.System {
	ref := db().MustGet(7)
	digital := core.Chiplet{
		Name: "digital-v" + string(rune('0'+gen)), Type: tech.Logic,
		Transistors: digitalTransistors, NodeNm: 7,
	}
	return &core.System{
		Name: "product",
		Chiplets: []core.Chiplet{
			digital,
			core.BlockFromArea("memory", tech.Memory, 60, ref, 14),
			core.BlockFromArea("io", tech.Analog, 30, ref, 14),
		},
		Packaging: pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:       mfg.DefaultParams(),
		Design:    descarbon.DefaultParams(),
	}
}

func twoGen() []Generation {
	return []Generation{
		{Name: "gen1", System: product(1, 10e9)},
		{Name: "gen2", System: product(2, 14e9)},
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(db(), nil); err == nil {
		t.Error("empty roadmap should fail")
	}
	if _, err := Evaluate(db(), []Generation{{Name: "x"}}); err == nil {
		t.Error("generation without system should fail")
	}
	broken := product(1, 10e9)
	broken.Chiplets[0].Transistors = 0
	if _, err := Evaluate(db(), []Generation{{Name: "x", System: broken}}); err == nil {
		t.Error("invalid system should fail")
	}
}

func TestCarryOverDetection(t *testing.T) {
	rep, err := Evaluate(db(), twoGen())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations) != 2 {
		t.Fatalf("want 2 generation reports, got %d", len(rep.Generations))
	}
	g1, g2 := rep.Generations[0], rep.Generations[1]
	if len(g1.CarriedOver) != 0 {
		t.Errorf("gen1 should carry nothing over, got %v", g1.CarriedOver)
	}
	if len(g2.CarriedOver) != 2 {
		t.Errorf("gen2 should carry memory and io over, got %v", g2.CarriedOver)
	}
	// Reuse must cut gen2's per-part carbon below the naive redesign.
	if g2.PerPartKg >= g2.NaivePerPartKg {
		t.Errorf("gen2 reuse per-part %.2f should be below naive %.2f", g2.PerPartKg, g2.NaivePerPartKg)
	}
	// Gen1 has no reuse: per-part equals naive.
	if g1.PerPartKg != g1.NaivePerPartKg {
		t.Errorf("gen1 per-part %.2f should equal naive %.2f", g1.PerPartKg, g1.NaivePerPartKg)
	}
}

func TestNodeChangeBreaksCarryOver(t *testing.T) {
	gens := twoGen()
	// Move gen2's memory chiplet to a different node: same name, but it
	// is a new design now.
	gens[1].System.Chiplets[1].NodeNm = 10
	rep, err := Evaluate(db(), gens)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations[1].CarriedOver) != 1 {
		t.Errorf("retargeted memory chiplet should not carry over: %v", rep.Generations[1].CarriedOver)
	}
}

func TestFleetAccounting(t *testing.T) {
	gens := twoGen()
	gens[0].Volume = 200_000
	gens[1].Volume = 300_000
	rep, err := Evaluate(db(), gens)
	if err != nil {
		t.Fatal(err)
	}
	wantFleet := rep.Generations[0].PerPartKg*200_000 + rep.Generations[1].PerPartKg*300_000
	if diff := rep.TotalFleetKg() - wantFleet; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("TotalFleetKg = %g, want %g", rep.TotalFleetKg(), wantFleet)
	}
	if rep.SavingFraction() <= 0 || rep.SavingFraction() >= 1 {
		t.Errorf("saving fraction %.3f should be in (0, 1)", rep.SavingFraction())
	}
	if rep.NaiveFleetKg() <= rep.TotalFleetKg() {
		t.Error("naive fleet carbon should exceed reuse-aware fleet carbon")
	}
}

// A three-generation roadmap keeps amortizing: each generation with
// carried-over chiplets beats its own naive baseline.
func TestThreeGenerations(t *testing.T) {
	gens := []Generation{
		{Name: "gen1", System: product(1, 10e9)},
		{Name: "gen2", System: product(2, 14e9)},
		{Name: "gen3", System: product(3, 20e9)},
	}
	rep, err := Evaluate(db(), gens)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range rep.Generations[1:] {
		if g.PerPartKg >= g.NaivePerPartKg {
			t.Errorf("generation %d should benefit from reuse", i+2)
		}
	}
	// The IncludeNRE extension compounds the saving.
	for i := range gens {
		gens[i].System.IncludeNRE = true
	}
	repNRE, err := Evaluate(db(), gens)
	if err != nil {
		t.Fatal(err)
	}
	if repNRE.TotalFleetKg() <= rep.TotalFleetKg() {
		t.Error("NRE accounting should raise absolute carbon")
	}
}

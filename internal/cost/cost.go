// Package cost implements the dollar-cost model ECO-CHIP integrates with
// in Section VI(2) (Fig. 15), following the structure of the
// Chiplet-Actuary / Graening et al. cost models [20],[27],[59]:
//
//   - die cost     = wafer cost / (dies-per-wafer * yield), using the
//     *same* negative-binomial yield and wafer geometry as the carbon
//     model, per the paper ("identical yield numbers used for CFP
//     estimation"),
//   - assembly cost = per-architecture substrate cost over the package
//     area plus a per-chiplet bonding cost, divided by assembly yield,
//   - NRE cost     = mask-set and design-effort dollars amortized over
//     the manufactured volume.
package cost

import (
	"fmt"

	"ecochip/internal/tech"
	"ecochip/internal/wafer"
	"ecochip/internal/yieldmodel"
)

// Params configures the cost model.
type Params struct {
	// Wafer is the manufacturing wafer geometry.
	Wafer wafer.Wafer
	// Alpha is the yield clustering parameter.
	Alpha float64
	// SubstrateUSDPerCM2 maps a packaging architecture name (the
	// pkgcarbon Architecture String values) to substrate cost per cm^2.
	SubstrateUSDPerCM2 map[string]float64
	// BondUSDPerChiplet is the per-chiplet attach/bond cost.
	BondUSDPerChiplet float64
	// MaskSetUSD maps node nm to full mask-set NRE dollars.
	MaskSetUSD map[int]float64
}

// DefaultParams uses published-magnitude substrate and mask costs.
func DefaultParams() Params {
	return Params{
		Wafer: wafer.Default(),
		Alpha: yieldmodel.DefaultAlpha,
		SubstrateUSDPerCM2: map[string]float64{
			"RDL":                2.0,
			"EMIB":               3.5,
			"passive-interposer": 6.0,
			"active-interposer":  9.0,
			"3D":                 5.0,
			"monolithic":         0.5,
		},
		BondUSDPerChiplet: 1.5,
		MaskSetUSD: map[int]float64{
			7: 10_000_000, 10: 6_000_000, 14: 4_000_000,
			22: 2_500_000, 28: 1_500_000, 40: 1_000_000, 65: 500_000,
		},
	}
}

// Validate enforces basic sanity.
func (p Params) Validate() error {
	if err := p.Wafer.Validate(); err != nil {
		return err
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("cost: alpha must be positive, got %g", p.Alpha)
	}
	if p.BondUSDPerChiplet < 0 {
		return fmt.Errorf("cost: bond cost must be non-negative")
	}
	return nil
}

// DieUSD returns the manufactured cost of one good die of the given area
// and node: the wafer cost divided across good dies.
func DieUSD(n *tech.Node, areaMM2 float64, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if areaMM2 <= 0 {
		return 0, fmt.Errorf("cost: die area must be positive, got %g", areaMM2)
	}
	dpw := p.Wafer.DiesPerWafer(areaMM2)
	if dpw == 0 {
		return 0, fmt.Errorf("cost: die of %g mm^2 does not fit the wafer", areaMM2)
	}
	y := yieldmodel.DieAlpha(areaMM2, n.DefectDensity, p.Alpha)
	return n.WaferCostUSD / (float64(dpw) * y), nil
}

// AssemblyUSD returns the packaging cost: substrate dollars over the
// package area plus per-chiplet bonding, divided by the assembly yield
// computed by the packaging carbon model.
func AssemblyUSD(archName string, packageAreaMM2 float64, numChiplets int, assemblyYield float64, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	a, err := NewAssembler(archName, numChiplets, p)
	if err != nil {
		return 0, err
	}
	return a.USD(packageAreaMM2, assemblyYield)
}

// Assembler prices assembly for one fixed (architecture, chiplet count)
// pair with the parameters resolved and validated once at construction,
// so a compiled sweep's hot loop pays only the Eq. arithmetic per point
// instead of re-validating an unchanged Params and re-resolving the same
// substrate-rate map entry. USD is bit-identical to AssemblyUSD.
type Assembler struct {
	rate        float64
	bondUSD     float64
	numChiplets int
}

// NewAssembler resolves the substrate rate for the architecture and
// freezes the per-chiplet bond cost. Unlike AssemblyUSD it does NOT
// validate p as a whole; callers construct it from an already-validated
// parameter set.
func NewAssembler(archName string, numChiplets int, p Params) (Assembler, error) {
	rate, ok := p.SubstrateUSDPerCM2[archName]
	if !ok {
		return Assembler{}, fmt.Errorf("cost: no substrate cost for architecture %q", archName)
	}
	if numChiplets < 1 {
		return Assembler{}, fmt.Errorf("cost: invalid chiplet count %d", numChiplets)
	}
	return Assembler{rate: rate, bondUSD: p.BondUSDPerChiplet, numChiplets: numChiplets}, nil
}

// USD returns the assembly cost of one package of the given area and
// assembly yield.
func (a Assembler) USD(packageAreaMM2, assemblyYield float64) (float64, error) {
	if packageAreaMM2 < 0 {
		return 0, fmt.Errorf("cost: invalid package area %g or chiplet count %d", packageAreaMM2, a.numChiplets)
	}
	if assemblyYield <= 0 || assemblyYield > 1 {
		return 0, fmt.Errorf("cost: assembly yield %g outside (0, 1]", assemblyYield)
	}
	return (a.rate*packageAreaMM2/100 + a.bondUSD*float64(a.numChiplets)) / assemblyYield, nil
}

// NREUSDPerPart returns the per-part share of mask-set NRE for a chiplet
// in the given node manufactured parts times.
func NREUSDPerPart(n *tech.Node, parts int, p Params) (float64, error) {
	if parts < 1 {
		return 0, fmt.Errorf("cost: parts must be >= 1, got %d", parts)
	}
	mask, ok := p.MaskSetUSD[n.Nm]
	if !ok {
		return 0, fmt.Errorf("cost: no mask-set cost for node %dnm", n.Nm)
	}
	return mask / float64(parts), nil
}

// Die is one die in a system cost query.
type Die struct {
	Node    *tech.Node
	AreaMM2 float64
}

// Breakdown is a per-system dollar-cost result.
type Breakdown struct {
	// DiesUSD is the summed good-die cost.
	DiesUSD float64
	// AssemblyUSD is the packaging/attach cost.
	AssemblyUSD float64
	// NREUSD is the per-part amortized mask NRE.
	NREUSD float64
}

// TotalUSD sums the breakdown.
func (b Breakdown) TotalUSD() float64 { return b.DiesUSD + b.AssemblyUSD + b.NREUSD }

// SystemUSD prices a multi-die system: per-die manufactured cost plus
// assembly plus amortized NRE over the per-chiplet volume.
func SystemUSD(dies []Die, archName string, packageAreaMM2, assemblyYield float64, partsPerChiplet int, p Params) (Breakdown, error) {
	if len(dies) == 0 {
		return Breakdown{}, fmt.Errorf("cost: no dies")
	}
	var b Breakdown
	for _, d := range dies {
		usd, err := DieUSD(d.Node, d.AreaMM2, p)
		if err != nil {
			return Breakdown{}, err
		}
		b.DiesUSD += usd
		nre, err := NREUSDPerPart(d.Node, partsPerChiplet, p)
		if err != nil {
			return Breakdown{}, err
		}
		b.NREUSD += nre
	}
	asm, err := AssemblyUSD(archName, packageAreaMM2, len(dies), assemblyYield, p)
	if err != nil {
		return Breakdown{}, err
	}
	b.AssemblyUSD = asm
	return b, nil
}

package shard

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// chaosSchedules returns the per-replica fault schedules of one chaos
// trial: one replica guaranteed to crash mid-block, one prone to
// duplicate deliveries, one mixing drops, transient errors and delays,
// one flapping straggler (slow deliveries plus periodic outages, the
// health-fabric levers) — all seeded from the trial RNG so failures
// replay.
func chaosSchedules(rng *rand.Rand) []FaultSpec {
	return []FaultSpec{
		{Seed: rng.Int63(), CrashAfter: 1 + rng.Intn(4), Dup: 0.2},
		{Seed: rng.Int63(), Dup: 0.5, Drop: 0.1},
		{Seed: rng.Int63(), Drop: 0.3, Err: 0.3, Crash: 0.05, Delay: time.Duration(rng.Intn(3)) * time.Millisecond},
		{Seed: rng.Int63(), Slow: 3 * time.Millisecond, SlowProb: 0.3, FlapEvery: 2 + rng.Intn(3), Dup: 0.1},
	}
}

// The chaos parity suite: random systems × random fault schedules
// (crash-mid-block, duplicates, drops, transient errors, delays, lease
// expiry) must leave both the full sweep and the Pareto front
// bit-identical to the single-process plan. Runs under -race in CI.
func TestChaosParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var sawCrash, sawDup, sawRequeue bool
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		plan, cat, key := testSweep(t, rng)
		want, err := plan.RunCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		cfg := fastCfg()
		cfg.BlockSize = 4 + rng.Intn(24)
		cfg.LeaseBlocks = 1 + rng.Intn(4)
		cfg.Seed = rng.Int63()
		if trial%2 == 1 {
			// Half the trials also force lease expiry on the delayed replica.
			cfg.LeaseTimeout = 10 * time.Millisecond
		}
		var transports []Transport
		for _, spec := range chaosSchedules(rng) {
			transports = append(transports, Fault(NewReplica(cat), spec))
		}

		co := NewCoordinator(plan, key, transports, cfg)
		got, err := co.Sweep(context.Background())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSamePoints(t, want, got, "chaos sweep")

		// Front mode under an independent schedule of the same trial.
		objectives := []Objective{ObjEmbodied, ObjCost}
		ms, err := ObjectiveMetrics(objectives)
		if err != nil {
			t.Fatal(err)
		}
		wantFront, wantTotal, err := plan.ParetoFrontCtx(context.Background(), ms)
		if err != nil {
			t.Fatal(err)
		}
		var frontTransports []Transport
		for _, spec := range chaosSchedules(rng) {
			frontTransports = append(frontTransports, Fault(NewReplica(cat), spec))
		}
		cof := NewCoordinator(plan, key, frontTransports, cfg)
		gotFront, gotTotal, err := cof.ParetoFront(context.Background(), objectives)
		if err != nil {
			t.Fatalf("trial %d front: %v", trial, err)
		}
		if gotTotal != wantTotal {
			t.Fatalf("trial %d: front total %d, want %d", trial, gotTotal, wantTotal)
		}
		assertSamePoints(t, wantFront, gotFront, "chaos front")

		st := co.Stats()
		sf := cof.Stats()
		sawCrash = sawCrash || st.ReplicasLost > 0 || sf.ReplicasLost > 0
		sawDup = sawDup || st.BlocksDeduped > 0 || sf.BlocksDeduped > 0
		sawRequeue = sawRequeue || st.BlocksRequeued > 0 || sf.BlocksRequeued > 0
	}
	// The suite's guarantees are only meaningful if the schedules
	// actually exercised the recovery paths.
	if !sawCrash {
		t.Error("no trial lost a replica to a crash")
	}
	if !sawDup {
		t.Error("no trial deduplicated a double delivery")
	}
	if !sawRequeue {
		t.Error("no trial re-leased a block")
	}
}

package ecochip

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestFacadeNodeSweepAndPareto(t *testing.T) {
	db := DefaultDB()
	points, err := NodeSweep(GA102(db, 7, 14, 10, false), db, []int{7, 14}, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("2^3 combinations expected, got %d", len(points))
	}
	front := ParetoFront(points, func(p DesignPoint) float64 { return p.EmbodiedKg },
		func(p DesignPoint) float64 { return p.CostUSD })
	if len(front) == 0 || len(front) > len(points) {
		t.Errorf("implausible front size %d", len(front))
	}
}

func TestFacadeTornado(t *testing.T) {
	db := DefaultDB()
	results, err := Tornado(A15(db, 7, 14, 10, false), db, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("tornado should produce factors")
	}
}

func TestFacadeEPYC(t *testing.T) {
	db := DefaultDB()
	hi, err := EPYC(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	hiRep, err := hi.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := EPYCMonolith(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	monoRep, err := mono.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	if hiRep.EmbodiedKg() >= monoRep.EmbodiedKg() {
		t.Error("EPYC chiplet design should beat its monolith")
	}
}

func TestFacadeRoadmap(t *testing.T) {
	db := DefaultDB()
	gen := func() *System { return A15(db, 7, 14, 10, false) }
	rep, err := EvaluateRoadmap(db, []Generation{
		{Name: "g1", System: gen()},
		{Name: "g2", System: gen()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations) != 2 {
		t.Fatalf("want 2 generations, got %d", len(rep.Generations))
	}
	// Identical systems: generation 2 reuses everything.
	if len(rep.Generations[1].CarriedOver) != 3 {
		t.Errorf("gen2 should carry all 3 chiplets over, got %v", rep.Generations[1].CarriedOver)
	}
}

func TestFacadeDisaggregate(t *testing.T) {
	db := DefaultDB()
	plan, err := Disaggregate(GA102(db, 7, 14, 10, false), db)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EmbodiedKg > plan.InitialKg {
		t.Error("plan must never be worse than its input")
	}
}

// The compiled search, its cancellable variant and the evaluate-per-
// candidate reference must agree through the facade, and the compiled
// plan must surface its step-spanning statistics.
func TestFacadeDisaggregateCtxAndReference(t *testing.T) {
	db := DefaultDB()
	ref := db.MustGet(7)
	var chiplets []Chiplet
	for i := 0; i < 5; i++ {
		chiplets = append(chiplets, BlockFromArea(fmt.Sprintf("blk%d", i), Logic, 4, ref, 7))
	}
	base := &System{
		Name:      "facade-disagg",
		Chiplets:  chiplets,
		Packaging: DefaultPackaging(RDLFanout),
		Mfg:       DefaultMfgParams(),
		Design:    DefaultDesignParams(),
	}
	ctx := context.Background()
	plan, err := DisaggregateCtx(ctx, base, db, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := DisaggregateReference(ctx, base, db)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(plan.EmbodiedKg) != math.Float64bits(want.EmbodiedKg) || plan.Steps != want.Steps {
		t.Fatalf("compiled plan diverges from the reference: %+v vs %+v", plan, want)
	}
	var s DisaggregationStats = plan.Stats
	if s.Candidates == 0 {
		t.Errorf("compiled plan reported no candidate evaluations: %+v", s)
	}
	if !strings.Contains(s.String(), "disaggregate plan:") {
		t.Errorf("stats summary missing its header: %q", s.String())
	}
}

package explore

import (
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/testcases"
)

func BenchmarkNodeSweep27(b *testing.B) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	cp := cost.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NodeSweep(base, db(), []int{7, 10, 14}, cp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisaggregate8Blocks(b *testing.B) {
	base := fineGrained(6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Disaggregate(base, db()); err != nil {
			b.Fatal(err)
		}
	}
}

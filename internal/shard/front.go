package shard

import (
	"sort"

	"ecochip/internal/explore"
)

// frontFold is one block's incremental skyline: the mutually
// non-dominated subset of the points streamed so far, with their output
// slots. The fold semantics mirror explore's per-worker block fronts
// (equal points do not dominate each other, so exact duplicates
// coexist), which is what makes the coordinator's barrier merge — sort
// survivors by slot, one final explore.ParetoFront pass — bit-identical
// to ParetoFrontCtx: dominance is transitive, so any point a block-local
// pass eliminates would also be eliminated by the final full-information
// pass, regardless of how blocks partition the space.
type frontFold struct {
	k     int
	slots []int
	pts   []explore.Point
	objs  []float64 // len(pts)*k objective values
	vals  []float64 // candidate scratch, len k
}

func newFrontFold(k int) *frontFold {
	return &frontFold{k: k, vals: make([]float64, k)}
}

// add folds one point into the front: rejected if any member dominates
// it, otherwise inserted after evicting the members it dominates.
func (f *frontFold) add(slot int, pt *explore.Point, objectives []explore.Metric) {
	vals := f.vals
	for j, m := range objectives {
		vals[j] = m(*pt)
	}
	for e := 0; e < len(f.pts); {
		ov := f.objs[e*f.k : (e+1)*f.k]
		memberBetter, candidateBetter := false, false
		for j := 0; j < f.k; j++ {
			switch {
			case ov[j] < vals[j]:
				memberBetter = true
			case ov[j] > vals[j]:
				candidateBetter = true
			}
		}
		if memberBetter && !candidateBetter {
			return // dominated by a member
		}
		if candidateBetter && !memberBetter {
			// Candidate dominates the member: swap-delete (slot order is
			// restored by sorted()).
			last := len(f.pts) - 1
			f.pts[e] = f.pts[last]
			f.slots[e] = f.slots[last]
			f.pts = f.pts[:last]
			f.slots = f.slots[:last]
			copy(f.objs[e*f.k:(e+1)*f.k], f.objs[last*f.k:(last+1)*f.k])
			f.objs = f.objs[:last*f.k]
			continue
		}
		e++
	}
	cp := *pt
	cp.Nodes = append([]int(nil), pt.Nodes...)
	f.slots = append(f.slots, slot)
	f.pts = append(f.pts, cp)
	f.objs = append(f.objs, vals...)
}

// sorted returns the surviving (slot, point) pairs in ascending slot
// order — the canonical wire form of a block front.
func (f *frontFold) sorted() ([]int, []explore.Point) {
	order := make([]int, len(f.pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return f.slots[order[a]] < f.slots[order[b]] })
	slots := make([]int, len(order))
	pts := make([]explore.Point, len(order))
	for i, o := range order {
		slots[i] = f.slots[o]
		pts[i] = f.pts[o]
	}
	return slots, pts
}

package descarbon

import (
	"math"
	"testing"
	"testing/quick"

	"ecochip/internal/tech"
)

func n(nm int) *tech.Node { return tech.Default().MustGet(nm) }

func TestCalibrationPoint(t *testing.T) {
	// The paper's measurement: 700k gates in 7nm take 24 CPU-hours.
	got := SPRHours(700_000, n(7))
	if math.Abs(got-24) > 1e-9 {
		t.Errorf("SPRHours(700k, 7nm) = %g, want 24", got)
	}
}

func TestGA102Magnitude(t *testing.T) {
	// Section V-A(2): GA102 has over 4.5B logic gates, so
	// t_SP&R ~ 1.5e5 CPU-hours at 7nm.
	hours := SPRHours(4.5e9, n(7))
	if hours < 1.0e5 || hours > 2.0e5 {
		t.Errorf("SPRHours(4.5e9, 7nm) = %g, want ~1.5e5", hours)
	}
}

func TestSPRScalesLinearly(t *testing.T) {
	f := func(g uint32) bool {
		gates := float64(g%10_000_000) + 1
		return math.Abs(SPRHours(2*gates, n(7))-2*SPRHours(gates, n(7))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOlderNodesDesignFaster(t *testing.T) {
	// EDA productivity improves on mature nodes (Section III-E).
	sizes := tech.DefaultSizes()
	for i := 1; i < len(sizes); i++ {
		newer := SPRHours(1e6, n(sizes[i-1]))
		older := SPRHours(1e6, n(sizes[i]))
		if older >= newer {
			t.Errorf("SP&R at %dnm (%g h) should be faster than %dnm (%g h)",
				sizes[i], older, sizes[i-1], newer)
		}
	}
}

func TestSPRHoursPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative gates should panic")
		}
	}()
	SPRHours(-1, n(7))
}

func TestSinglePassKg(t *testing.T) {
	// 24h * 10W = 0.24 kWh; * 0.7 kg/kWh = 0.168 kg.
	kg, err := SinglePassKg(700_000, n(7), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kg-0.168) > 1e-9 {
		t.Errorf("SinglePassKg = %g, want 0.168", kg)
	}
}

func TestVerificationDominates(t *testing.T) {
	// With VerifShare = 0.8, verification must be 80% of TotalHours.
	p := DefaultParams()
	total := TotalHours(1e6, n(7), p)
	spr := SPRHours(1e6, n(7))
	impl := spr * (1 + p.AnalyzeFactor) * float64(p.Iterations)
	verif := total - impl
	if math.Abs(verif/total-0.8) > 1e-9 {
		t.Errorf("verification share = %g, want 0.8", verif/total)
	}
}

func TestChipletKgScalesWithIterations(t *testing.T) {
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.Iterations = 200
	k1, err := ChipletKg(1e6, n(7), p1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ChipletKg(1e6, n(7), p2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k2/k1-2) > 1e-9 {
		t.Errorf("doubling iterations should double design carbon, ratio = %g", k2/k1)
	}
}

func TestAmortization(t *testing.T) {
	got, err := AmortizedKg(1000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.01) > 1e-12 {
		t.Errorf("AmortizedKg = %g, want 0.01", got)
	}
	if _, err := AmortizedKg(1000, 0); err == nil {
		t.Error("zero parts should fail")
	}
}

// Property: amortized carbon is monotone decreasing in volume (Fig. 12a).
func TestAmortizationMonotone(t *testing.T) {
	f := func(v uint16) bool {
		vol := int(v) + 1
		a, err1 := AmortizedKg(5000, vol)
		b, err2 := AmortizedKg(5000, vol*10)
		return err1 == nil && err2 == nil && b < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSystemKg(t *testing.T) {
	// Two chiplets at 1000 kg each amortized over 100k and 200k parts,
	// plus 500 kg comm design over 100k systems.
	got, err := SystemKg([]float64{1000, 1000}, []int{100_000, 200_000}, 500, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0/100_000 + 1000.0/200_000 + 500.0/100_000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SystemKg = %g, want %g", got, want)
	}
}

func TestSystemKgErrors(t *testing.T) {
	if _, err := SystemKg([]float64{1}, []int{1, 2}, 0, 1); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := SystemKg([]float64{1}, []int{1}, 0, 0); err == nil {
		t.Error("zero system volume should fail")
	}
	if _, err := SystemKg([]float64{1}, []int{0}, 0, 1); err == nil {
		t.Error("zero chiplet volume should fail")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.PowerW = 0 },
		func(p *Params) { p.Iterations = 0 },
		func(p *Params) { p.CarbonIntensity = 1 },
		func(p *Params) { p.VerifShare = 1 },
		func(p *Params) { p.AnalyzeFactor = -1 },
	}
	for i, f := range bad {
		p := DefaultParams()
		f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if _, err := SinglePassKg(1e6, n(7), Params{}); err == nil {
		t.Error("zero params should fail")
	}
	if _, err := ChipletKg(1e6, n(7), Params{}); err == nil {
		t.Error("zero params should fail")
	}
}

func TestGatesFromTransistors(t *testing.T) {
	if got := GatesFromTransistors(4e9); got != 1e9 {
		t.Errorf("GatesFromTransistors(4e9) = %g, want 1e9", got)
	}
}

package engine

import (
	"context"
	"fmt"
	"runtime/debug"

	"ecochip/internal/core"
)

// PanicError is a panic recovered from a worker task, converted into an
// ordinary batch error. Long-lived serving processes fan untrusted
// evaluation requests across the pool, and one poisoned design point
// must fail its batch — with enough context to find it — rather than
// kill the process. Index is the point index the task was evaluating
// (-1 when unknown); for block walks Lo/Hi carry the block's index
// range instead. Stack is the panicking goroutine's stack at recovery.
type PanicError struct {
	Index  int
	Lo, Hi int
	Value  any
	Stack  []byte
}

func (e *PanicError) Error() string {
	if e.Lo != e.Hi {
		return fmt.Sprintf("engine: panic in block [%d,%d): %v\n%s", e.Lo, e.Hi, e.Value, e.Stack)
	}
	return fmt.Sprintf("engine: panic at point %d: %v\n%s", e.Index, e.Value, e.Stack)
}

// safeCall invokes one point task with panic recovery: a panic becomes a
// *PanicError carrying the point index and stack.
func safeCall[T, S any](ctx context.Context, i int, scratch S, fn func(ctx context.Context, i int, scratch S) (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Lo: i, Hi: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, scratch)
}

// safeBlock invokes one block walk with panic recovery: a panic becomes
// a *PanicError carrying the block's index range and stack.
func safeBlock(ctx context.Context, lo, hi int, tick func(), fn func(ctx context.Context, lo, hi int, tick func()) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: -1, Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, lo, hi, tick)
}

// safeScratch invokes a scratch constructor with panic recovery.
func safeScratch[S any](h *core.Hooks, newScratch func(h *core.Hooks) (S, error)) (s S, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return newScratch(h)
}

package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/tech"
)

// This file implements the grouping half of SoC-to-chiplet
// disaggregation (Section VI): given a system described at fine block
// granularity, decide which blocks should share a die. Merging blocks
// saves packaging overhead and amortizes per-die waste, but grows die
// area (hurting yield) and forces every member onto the most advanced
// node in the group. The optimizer runs a deterministic greedy merge:
// starting from the fully disaggregated system, it repeatedly applies
// the pairwise merge that lowers embodied carbon the most, stopping when
// no merge helps.

// Plan is the result of a disaggregation search.
type Plan struct {
	// System is the optimized system (chiplets are merged groups).
	System *core.System
	// Groups maps each result chiplet to the names of the original
	// blocks it absorbed.
	Groups [][]string
	// EmbodiedKg is the optimized embodied carbon.
	EmbodiedKg float64
	// InitialKg is the fully disaggregated starting point's carbon.
	InitialKg float64
	// Steps is the number of merges applied.
	Steps int
}

// mergeable reports whether two chiplets may share a die: same scaling
// type (a die is floorplanned per class here) and neither is a reused
// hard IP (merging would forfeit its pre-designed status).
func mergeable(a, b core.Chiplet) bool {
	return a.Type == b.Type && !a.Reused && !b.Reused
}

// merge combines two chiplets: transistor budgets add, the group settles
// on the most advanced (smallest) node so every member can be built.
func merge(a, b core.Chiplet) core.Chiplet {
	node := a.NodeNm
	if b.NodeNm < node {
		node = b.NodeNm
	}
	parts := a.ManufacturedParts
	if b.ManufacturedParts < parts || parts == 0 {
		parts = b.ManufacturedParts
	}
	return core.Chiplet{
		Name:              a.Name + "+" + b.Name,
		Type:              a.Type,
		Transistors:       a.Transistors + b.Transistors,
		NodeNm:            node,
		ManufacturedParts: parts,
	}
}

// Disaggregate runs the greedy merge search on the system's blocks and
// returns the best grouping found.
func Disaggregate(base *core.System, db *tech.DB) (*Plan, error) {
	return DisaggregateCtx(context.Background(), base, db)
}

// mergeCandidate is one (i, j) pairwise merge considered in a greedy
// step, with its evaluated system and embodied carbon.
type mergeCandidate struct {
	i, j int
	sys  *core.System
	kg   float64
}

// DisaggregateCtx is Disaggregate with cancellation and engine options.
// Each greedy step evaluates all O(n^2) candidate merges through the
// batch engine; one memo cache is shared across all steps because
// successive steps re-price mostly unchanged die sets.
func DisaggregateCtx(ctx context.Context, base *core.System, db *tech.DB, opts ...engine.Option) (*Plan, error) {
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	if base.Monolithic {
		return nil, fmt.Errorf("explore: disaggregation needs a chiplet-form system, not a monolith")
	}
	// Share one cache across every step unless the caller provided their
	// own engine configuration.
	opts = append([]engine.Option{engine.WithCache(engine.NewCache())}, opts...)

	current := cloneSystem(base)
	groups := make([][]string, len(current.Chiplets))
	for i, c := range current.Chiplets {
		groups[i] = []string{c.Name}
	}
	currentKg, err := embodied(current, db)
	if err != nil {
		return nil, err
	}
	initialKg := currentKg

	steps := 0
	for len(current.Chiplets) > 1 {
		var pairs []mergeCandidate
		for i := 0; i < len(current.Chiplets); i++ {
			for j := i + 1; j < len(current.Chiplets); j++ {
				if mergeable(current.Chiplets[i], current.Chiplets[j]) {
					pairs = append(pairs, mergeCandidate{i: i, j: j})
				}
			}
		}
		evaluated, err := engine.Run(ctx, len(pairs), func(_ context.Context, k int, h *core.Hooks) (mergeCandidate, error) {
			c := pairs[k]
			c.sys = applyMerge(current, c.i, c.j)
			rep, err := c.sys.EvaluateWith(db, h)
			if err != nil {
				return mergeCandidate{}, err
			}
			c.kg = rep.EmbodiedKg()
			return c, nil
		}, opts...)
		if err != nil {
			return nil, err
		}
		// The pick is a serial scan in (i, j) order, so parallel
		// candidate evaluation reproduces the serial search exactly:
		// only a strictly lower carbon displaces the incumbent.
		bestKg := currentKg
		bestI, bestJ := -1, -1
		var bestSys *core.System
		for _, c := range evaluated {
			if c.kg < bestKg {
				bestKg, bestI, bestJ, bestSys = c.kg, c.i, c.j, c.sys
			}
		}
		if bestI < 0 {
			break // no merge improves
		}
		mergedGroup := append(append([]string{}, groups[bestI]...), groups[bestJ]...)
		var nextGroups [][]string
		for k := range groups {
			if k != bestI && k != bestJ {
				nextGroups = append(nextGroups, groups[k])
			}
		}
		groups = append(nextGroups, mergedGroup)
		current, currentKg = bestSys, bestKg
		steps++
	}

	for _, g := range groups {
		sort.Strings(g)
	}
	sort.Slice(groups, func(i, j int) bool {
		return strings.Join(groups[i], ",") < strings.Join(groups[j], ",")
	})
	return &Plan{
		System:     current,
		Groups:     groups,
		EmbodiedKg: currentKg,
		InitialKg:  initialKg,
		Steps:      steps,
	}, nil
}

// applyMerge returns a copy of s with chiplets i and j merged (i < j).
// The merged chiplet is appended so group bookkeeping can mirror the
// move.
func applyMerge(s *core.System, i, j int) *core.System {
	out := cloneSystem(s)
	merged := merge(out.Chiplets[i], out.Chiplets[j])
	var chiplets []core.Chiplet
	for k, c := range out.Chiplets {
		if k != i && k != j {
			chiplets = append(chiplets, c)
		}
	}
	out.Chiplets = append(chiplets, merged)
	return out
}

func cloneSystem(s *core.System) *core.System {
	out := *s
	out.Chiplets = make([]core.Chiplet, len(s.Chiplets))
	copy(out.Chiplets, s.Chiplets)
	return &out
}

func embodied(s *core.System, db *tech.DB) (float64, error) {
	rep, err := s.Evaluate(db)
	if err != nil {
		return 0, err
	}
	return rep.EmbodiedKg(), nil
}

package engine

import (
	"context"
	"fmt"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/testcases"
)

// fullFactorial enumerates every node assignment of the candidate list
// across the system's chiplets, serial-walk order (chiplet 0 is the most
// significant digit).
func fullFactorial(base *core.System, nodes []int) ([]*core.System, error) {
	nc := len(base.Chiplets)
	total := 1
	for i := 0; i < nc; i++ {
		total *= len(nodes)
	}
	systems := make([]*core.System, total)
	assign := make([]int, nc)
	for idx := 0; idx < total; idx++ {
		rem := idx
		for i := nc - 1; i >= 0; i-- {
			assign[i] = nodes[rem%len(nodes)]
			rem /= len(nodes)
		}
		s, err := base.WithNodes(assign...)
		if err != nil {
			return nil, err
		}
		systems[idx] = s
	}
	return systems, nil
}

// TestDeterminismFullFactorial is the acceptance test of the engine: a
// 4-chiplet x 5-node full-factorial sweep (625 systems) evaluated
// through EvaluateBatch must return byte-identical results to the serial
// Evaluate loop — same point order, same floats — for every worker count
// and with or without the memo cache.
func TestDeterminismFullFactorial(t *testing.T) {
	d := db()
	base, err := testcases.GA102Split(d, 2, pkgcarbon.RDLFanout) // 2 digital + memory + analog = 4 chiplets
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{7, 10, 14, 22, 28}
	systems, err := fullFactorial(base, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 625 {
		t.Fatalf("expected 625 design points, got %d", len(systems))
	}

	// Serial reference: the pre-engine path, one Evaluate per point.
	want := make([]*core.Report, len(systems))
	for i, s := range systems {
		rep, err := s.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"serial-no-cache", []Option{WithWorkers(1), WithoutCache()}},
		{"serial-cached", []Option{WithWorkers(1)}},
		{"parallel-2", []Option{WithWorkers(2)}},
		{"parallel-8", []Option{WithWorkers(8)}},
		{"parallel-shared-cache", []Option{WithWorkers(8), WithCache(NewCache())}},
		{"parallel-default", nil},
	} {
		got, err := EvaluateBatch(context.Background(), d, systems, cfg.opts...)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		for i := range systems {
			assertReportsEqual(t, fmt.Sprintf("%s point %d", cfg.name, i), want[i], got[i])
		}
	}
}

// TestCacheHitRateOnSweep documents why the cache exists: the 625-system
// factorial touches only 4 chiplets x 5 nodes = 20 distinct dies, so
// almost every die lookup is a hit.
func TestCacheHitRateOnSweep(t *testing.T) {
	d := db()
	base, err := testcases.GA102Split(d, 2, pkgcarbon.RDLFanout)
	if err != nil {
		t.Fatal(err)
	}
	systems, err := fullFactorial(base, []int{7, 10, 14, 22, 28})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	if _, err := EvaluateBatch(context.Background(), d, systems, WithCache(c)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	// 625 systems x 4 dies = 2500 lookups over <= 20 distinct dies
	// (some (type, node) pairs coincide in area, so <= holds, not ==).
	if s.DieHits+s.DieMisses != 2500 {
		t.Errorf("die lookups = %d, want 2500", s.DieHits+s.DieMisses)
	}
	if s.DieMisses > 20 {
		t.Errorf("die misses = %d, want <= 20 distinct dies", s.DieMisses)
	}
	if hr := s.HitRate(); hr < 0.95 {
		t.Errorf("hit rate %.3f, want >= 0.95 on a full-factorial sweep", hr)
	}
}

package explore

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// WalkRange is the resumable unit of a sharded sweep: walking the
// sequence space as arbitrary contiguous segments — in any order, with
// overlaps re-walked — must reassemble to the bit-exact RunCtx result.
func TestWalkRangeSegmentsReassembleBitIdentical(t *testing.T) {
	db := tech.Default()
	cp := cost.DefaultParams()
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 5; trial++ {
		sys := testcases.Random(rng, db)
		nodes := testcases.RandomNodes(rng)
		plan, err := Compile(sys, db, nodes, cp)
		if err == ErrNoFastPath {
			trial--
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.RunCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		got := make([]Point, plan.Combos())
		filled := make([]bool, plan.Combos())
		// Random segment boundaries, walked in shuffled order; one
		// segment re-walked to model a retried shard block.
		var cuts []int
		for k := 0; k < plan.Combos(); k += 1 + rng.Intn(5) {
			cuts = append(cuts, k)
		}
		cuts = append(cuts, plan.Combos())
		order := rng.Perm(len(cuts) - 1)
		if len(order) > 1 {
			order = append(order, order[0]) // duplicate walk of one segment
		}
		for _, s := range order {
			err := plan.WalkRange(context.Background(), cuts[s], cuts[s+1], func(idx int, pt *Point) error {
				cp := *pt
				cp.Nodes = append([]int(nil), pt.Nodes...)
				got[idx] = cp
				filled[idx] = true
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}

		for i := range want {
			if !filled[i] {
				t.Fatalf("trial %d: slot %d never visited", trial, i)
			}
			if !samePoint(want[i], got[i]) {
				t.Fatalf("trial %d: slot %d differs: %+v vs %+v", trial, i, want[i], got[i])
			}
		}
	}
}

func samePoint(a, b Point) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return math.Float64bits(a.EmbodiedKg) == math.Float64bits(b.EmbodiedKg) &&
		math.Float64bits(a.TotalKg) == math.Float64bits(b.TotalKg) &&
		math.Float64bits(a.CostUSD) == math.Float64bits(b.CostUSD) &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2)
}

// Out-of-range segments are authoring errors and must be rejected, and
// an empty segment is a no-op.
func TestWalkRangeBounds(t *testing.T) {
	db := tech.Default()
	sys := testcases.GA102(db, 7, 14, 10, false)
	plan, err := Compile(sys, db, []int{7, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	visit := func(int, *Point) error { return nil }
	if err := plan.WalkRange(context.Background(), 0, plan.Combos()+1, visit); err == nil {
		t.Error("hi beyond the plan accepted")
	}
	if err := plan.WalkRange(context.Background(), -1, 2, visit); err == nil {
		t.Error("negative lo accepted")
	}
	if err := plan.WalkRange(context.Background(), 3, 3, visit); err != nil {
		t.Errorf("empty segment errored: %v", err)
	}
}

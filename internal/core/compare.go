package core

import (
	"fmt"

	"ecochip/internal/act"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
)

// WithNodes returns a copy of the system with chiplet i re-targeted to
// nodes[i] (the technology "mix and match" sweep of Section V-A). The
// transistor budgets are preserved; areas re-derive at evaluation time.
func (s *System) WithNodes(nodes ...int) (*System, error) {
	if len(nodes) != len(s.Chiplets) {
		return nil, fmt.Errorf("core: %d nodes for %d chiplets", len(nodes), len(s.Chiplets))
	}
	out := *s
	out.Chiplets = make([]Chiplet, len(s.Chiplets))
	copy(out.Chiplets, s.Chiplets)
	for i, nm := range nodes {
		out.Chiplets[i].NodeNm = nm
	}
	return &out, nil
}

// ACTEmbodiedKg evaluates the same system under the ACT baseline model
// (Fig. 7(c) comparison): per-die manufacturing carbon plus ACT's fixed
// 150 g package constant, no design carbon, no wafer wastage.
func (s *System) ACTEmbodiedKg(db *tech.DB) (float64, error) {
	if err := s.Validate(db); err != nil {
		return 0, err
	}
	p := act.Params{CarbonIntensity: s.Mfg.CarbonIntensity, Alpha: s.Mfg.Alpha}
	if s.Monolithic || len(s.Chiplets) == 1 {
		node := db.MustGet(s.Chiplets[0].NodeNm)
		var area float64
		for _, c := range s.Chiplets {
			area += node.Area(c.Type, c.Transistors)
		}
		return act.SystemKg([]act.Die{{AreaMM2: area, Node: node}}, p)
	}
	dies := make([]act.Die, len(s.Chiplets))
	for i, c := range s.Chiplets {
		node := db.MustGet(c.NodeNm)
		dies[i] = act.Die{AreaMM2: node.Area(c.Type, c.Transistors), Node: node}
	}
	return act.SystemKg(dies, p)
}

// CostUSD prices the system with the dollar-cost model of Section VI(2),
// reusing the identical yield and floorplan numbers the carbon estimate
// produced.
func (s *System) CostUSD(db *tech.DB, cp cost.Params) (cost.Breakdown, error) {
	rep, err := s.Evaluate(db)
	if err != nil {
		return cost.Breakdown{}, err
	}
	return s.CostForReport(db, rep, cp)
}

// CostForReport prices the system from an evaluation report it already
// produced, so callers that need both carbon and cost (every sweep) pay
// for one evaluation instead of two.
func (s *System) CostForReport(db *tech.DB, rep *Report, cp cost.Params) (cost.Breakdown, error) {
	dies := make([]cost.Die, len(rep.Chiplets))
	for i, c := range rep.Chiplets {
		dies[i] = cost.Die{Node: db.MustGet(c.NodeNm), AreaMM2: c.AreaMM2}
	}
	archName := "monolithic"
	packageArea := rep.Chiplets[0].AreaMM2
	assemblyYield := 1.0
	if rep.Packaging != nil {
		archName = rep.Packaging.Arch.String()
		packageArea = rep.Packaging.PackageAreaMM2
		assemblyYield = rep.Packaging.AssemblyYield
	}
	vol := s.volume()
	return cost.SystemUSD(dies, archName, packageArea, assemblyYield, vol, cp)
}

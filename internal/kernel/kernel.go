// Package kernel is the compiled-evaluation core shared by every
// design-space workflow: node sweeps (internal/explore), tornado
// sensitivity (internal/sensitivity) and Monte Carlo uncertainty
// (internal/uncertainty) all reduce to "evaluate many systems that differ
// from a compiled base in a known, small way", and this package owns the
// machinery that makes those evaluations allocation-free and
// bit-identical to the one-off core.System.Evaluate path:
//
//   - Table: the dense per-(chiplet, node) invariant table of a node
//     sweep — core.DieCell rows plus die dollar cost, NRE cost and the
//     communication design share — built through the same core seam
//     (CellFor / MonolithCell) that Evaluate itself uses, so bit-identity
//     holds by construction.
//   - Scratch: one worker's reusable arena — the packaging estimator
//     (pkgcarbon.Estimator with its retained incremental floorplan
//     tree, whose single-changed-chiplet delta path the Gray-code sweep
//     walk drives through EstimatePackageDelta), chiplet descriptor
//     buffer, operational-term memo and the tech.Sandbox for per-sample
//     node perturbation.
//   - ParamPlan: a compiled plan keyed by perturbed *tech.Node / system
//     parameters. It tabulates every sub-result of the base point once
//     and re-evaluates perturbations by recomputing only the sub-models
//     a Dirty set names, serving everything else from the table through
//     the core.Hooks seam.
//
// The contract everywhere is bit-identity: a compiled evaluation returns
// the exact float bits of the uncompiled reference path (guarded by
// randomized equivalence tests in the client packages), so callers can
// switch paths freely for speed without perturbing a single result.
package kernel

import (
	"fmt"

	"ecochip/internal/floorplan"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// Totals is one design point reduced in the canonical core.Report order;
// the field and expression order mirror Report exactly so the sums carry
// the same float bits.
type Totals struct {
	// MfgKg, DesignKg, HIKg, NREKg, OperationalKg are the Report terms.
	MfgKg, DesignKg, HIKg, NREKg, OperationalKg float64
	// PackageAreaMM2 is the substrate/die footprint.
	PackageAreaMM2 float64
	// AssemblyYield is the package-level yield divisor (1 for monoliths).
	AssemblyYield float64
	// RouterPowerW is the communication power fed to the operational model.
	RouterPowerW float64
}

// EmbodiedKg returns C_emb exactly as core.Report.EmbodiedKg computes it.
func (t Totals) EmbodiedKg() float64 { return t.MfgKg + t.DesignKg + t.HIKg + t.NREKg }

// TotalKg returns C_tot exactly as core.Report.TotalKg computes it.
func (t Totals) TotalKg() float64 { return t.EmbodiedKg() + t.OperationalKg }

// Scratch is one worker's reusable evaluation arena. It is NOT safe for
// concurrent use: batch engines build one per worker goroutine
// (engine.RunScratch / engine.RunBlocks) and reuse it across every point
// the worker evaluates.
type Scratch struct {
	pkgCh []pkgcarbon.Chiplet
	est   *pkgcarbon.Estimator // sweep scratches only; nil for param plans

	hooks paramHooks    // param-plan scratches only
	sb    *tech.Sandbox // lazy; built on first PerturbNodes
	db    *tech.DB      // sandbox source (the plan's database)

	// Last-value memo for the operational term: its input (spec, router
	// power) is constant across whole sweeps and across all samples /
	// node-side factors of a parameter plan.
	opSpec   *opcarbon.Spec
	opValid  bool
	opPowerW float64
	opKg     float64

	// fpFolded is the floorplan-stats snapshot already folded into a
	// ScratchPool's totals (see ScratchPool.Put).
	fpFolded floorplan.TreeStats

	// Per-point package memo (sweep scratches). A compiled point's
	// package estimate is pure in the point's digit vector, so once a
	// scratch has estimated a point it can serve the folded quadruple
	// (PkgPoint) by the point's mixed-radix index and skip the estimator
	// — the serving shape of a re-walked plan, and the same retained-
	// state idea as the estimator's warm floorplan tree, one level up.
	// Slot keys hold index+1 so the zero value means empty; when the
	// point space outgrows the slot table the index hashes to a
	// direct-mapped slot and a collision simply recomputes (the memo
	// serves the estimator's own prior output, so it cannot change a
	// bit either way). Lazy: sized by the first StorePackagePoint.
	pkgPtKeys []uint64
	pkgPtVals []PkgPoint
	pkgPtSpan uint64 // point-space size the slots were sized for
	pkgPtLive int    // occupied slots (gauge; resets with the table)
	pkgPtStat PkgMemoStats
}

// PkgMemoStats counts the traffic of the per-point package memo. The
// interesting counter is Collisions: lookups that missed because the
// direct-mapped slot was occupied by a different point index, i.e. the
// recomputes an eviction policy could win back. ROADMAP flags possible
// pathological collision patterns under serving workloads; this makes
// them observable before any policy is built.
type PkgMemoStats struct {
	// Hits is the number of points served straight from the memo.
	Hits uint64
	// Misses is the number of lookups that found no entry (cold slots,
	// unsized tables and span changes included).
	Misses uint64
	// Collisions is the subset of Misses whose slot held a different
	// point index — a recompute forced purely by the direct-mapped
	// layout.
	Collisions uint64
	// Fills is the number of stores that claimed an empty slot. Fills
	// bounded well below the slot count means the workload's working
	// set fits the table and Collisions noise is hash-induced, not
	// capacity-induced.
	Fills uint64
	// Evictions is the number of stores that overwrote a live entry of
	// a different point index — the direct-mapped table's forced
	// evictions. A serving workload whose Evictions grow linearly with
	// traffic is thrashing the memo (the pathological collision pattern
	// ROADMAP flagged) and would benefit from a larger or associative
	// table.
	Evictions uint64
}

// Add accumulates o into s.
func (s *PkgMemoStats) Add(o PkgMemoStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Collisions += o.Collisions
	s.Fills += o.Fills
	s.Evictions += o.Evictions
}

// Delta returns the counters accumulated since prev was snapshotted.
func (s PkgMemoStats) Delta(prev PkgMemoStats) PkgMemoStats {
	return PkgMemoStats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		Collisions: s.Collisions - prev.Collisions,
		Fills:      s.Fills - prev.Fills,
		Evictions:  s.Evictions - prev.Evictions,
	}
}

// PkgMemoStats snapshots the scratch's per-point package-memo counters.
func (sc *Scratch) PkgMemoStats() PkgMemoStats { return sc.pkgPtStat }

// PkgPoint is the package-term quadruple one compiled sweep point folds
// into its totals: heterogeneous-integration carbon, package area,
// assembly yield and router power, exactly as returned by the package
// estimate of the point's digit vector.
type PkgPoint struct {
	HIKg, AreaMM2, AssemblyYield, RouterPowerW float64
}

// pkgPointSlotBits caps the per-point memo at 1<<pkgPointSlotBits slots
// (4096 × 40 B ≈ 160 KiB per worker scratch); larger point spaces share
// slots through the hash below.
const pkgPointSlotBits = 12

// pkgPointSlot maps a point index to its memo slot: the identity when
// the whole point space fits, a Fibonacci-hashed direct-mapped slot
// otherwise.
func pkgPointSlot(idx, span uint64) uint64 {
	if span <= 1<<pkgPointSlotBits {
		return idx
	}
	return idx * 0x9e3779b97f4a7c15 >> (64 - pkgPointSlotBits)
}

// LoadPackagePoint returns the memoized package quadruple of point
// index idx in a span-point space, if this scratch has estimated that
// exact point before.
func (sc *Scratch) LoadPackagePoint(idx, span uint64) (PkgPoint, bool) {
	if sc.pkgPtSpan != span || len(sc.pkgPtKeys) == 0 {
		sc.pkgPtStat.Misses++
		return PkgPoint{}, false
	}
	slot := pkgPointSlot(idx, span)
	if key := sc.pkgPtKeys[slot]; key != idx+1 {
		sc.pkgPtStat.Misses++
		if key != 0 {
			sc.pkgPtStat.Collisions++
		}
		return PkgPoint{}, false
	}
	sc.pkgPtStat.Hits++
	return sc.pkgPtVals[slot], true
}

// StorePackagePoint memoizes the package quadruple of point index idx
// in a span-point space, sizing (or resizing) the slot table on first
// use.
func (sc *Scratch) StorePackagePoint(idx, span uint64, v PkgPoint) {
	if sc.pkgPtSpan != span || len(sc.pkgPtKeys) == 0 {
		n := span
		if n > 1<<pkgPointSlotBits {
			n = 1 << pkgPointSlotBits
		}
		sc.pkgPtKeys = make([]uint64, n)
		sc.pkgPtVals = make([]PkgPoint, n)
		sc.pkgPtSpan = span
		sc.pkgPtLive = 0
	}
	slot := pkgPointSlot(idx, span)
	switch key := sc.pkgPtKeys[slot]; {
	case key == 0:
		sc.pkgPtStat.Fills++
		sc.pkgPtLive++
	case key != idx+1:
		sc.pkgPtStat.Evictions++
	}
	sc.pkgPtKeys[slot] = idx + 1
	sc.pkgPtVals[slot] = v
}

// PkgMemoOccupancy reports the point memo's live entry count against
// its slot capacity — a residency gauge (not a monotone counter, so it
// lives beside PkgMemoStats rather than in it). A memo near capacity
// with growing Evictions is the thrashing signature serving workloads
// watch for.
func (sc *Scratch) PkgMemoOccupancy() (occupied, capacity int) {
	return sc.pkgPtLive, len(sc.pkgPtKeys)
}

// NewSweepScratch builds the per-worker arena of a compiled node sweep:
// a chiplet descriptor buffer for nc dies and, when pkg is non-nil (the
// multi-chiplet path), a packaging estimator over the fixed parameters.
func NewSweepScratch(pkg *pkgcarbon.Params, nc int) (*Scratch, error) {
	sc := &Scratch{}
	if pkg != nil {
		est, err := pkgcarbon.NewEstimator(*pkg)
		if err != nil {
			return nil, err
		}
		sc.est = est
		sc.pkgCh = make([]pkgcarbon.Chiplet, nc)
	}
	return sc, nil
}

// Chiplets returns the scratch-owned packaging descriptor buffer; sweep
// walkers refresh only the entries their Gray step changed.
func (sc *Scratch) Chiplets() []pkgcarbon.Chiplet { return sc.pkgCh }

// ResizeChiplets re-slices the packaging descriptor buffer to n dies
// (within the construction capacity) and returns it — the shape of a
// shrinking search like Disaggregate, where each greedy step packages
// one fewer die on the same pooled scratch.
func (sc *Scratch) ResizeChiplets(n int) []pkgcarbon.Chiplet {
	if n > cap(sc.pkgCh) {
		panic("kernel: ResizeChiplets beyond the scratch's construction capacity")
	}
	sc.pkgCh = sc.pkgCh[:n]
	return sc.pkgCh
}

// EstimatePackage runs the scratch estimator over the current chiplet
// descriptors. The result is owned by the estimator and overwritten by
// the next call. Only multi-chiplet sweep scratches carry an estimator;
// calling this on a param-plan or monolith scratch is a usage error.
func (sc *Scratch) EstimatePackage() (*pkgcarbon.Result, error) {
	if sc.est == nil {
		return nil, fmt.Errorf("kernel: EstimatePackage on a scratch without a packaging estimator (param-plan or monolith scratch)")
	}
	return sc.est.Estimate(sc.pkgCh)
}

// EstimatePackageDelta is EstimatePackage when only chiplet descriptor
// `changed` differs from the previous estimate on this scratch — the
// Gray-step shape of a compiled sweep walk. The estimator routes the
// floorplan through its retained tree's single-block update and falls
// back to the full path whenever the precondition cannot be verified,
// so the result is bit-identical to EstimatePackage either way.
func (sc *Scratch) EstimatePackageDelta(changed int) (*pkgcarbon.Result, error) {
	if sc.est == nil {
		return nil, fmt.Errorf("kernel: EstimatePackageDelta on a scratch without a packaging estimator (param-plan or monolith scratch)")
	}
	return sc.est.EstimateDelta(sc.pkgCh, changed)
}

// MergeForkable reports whether the scratch estimator supports the
// pinned-base merge-candidate fork (false for scratches without an
// estimator).
func (sc *Scratch) MergeForkable() bool {
	return sc.est != nil && sc.est.MergeForkable()
}

// PrimeMergeBase pins the scratch's current chiplet descriptors as the
// merge-fork base: their floorplan is committed to the retained tree
// without running the packaging model. See pkgcarbon's PrimeMergeBase.
func (sc *Scratch) PrimeMergeBase() error {
	if sc.est == nil {
		return fmt.Errorf("kernel: PrimeMergeBase on a scratch without a packaging estimator (param-plan or monolith scratch)")
	}
	return sc.est.PrimeMergeBase(sc.pkgCh)
}

// EstimatePackageMergeFork is EstimatePackage for a Disaggregate merge
// candidate evaluated against a pinned base: the base primed by the
// last PrimeMergeBase with dies r1 and r2 removed and merged appended
// last. The candidate descriptor set is never materialized, and the
// retained floorplan stays pinned to the base so every candidate of a
// step forks against the same warm tree. Bit-identical to
// EstimatePackage on the candidate set.
func (sc *Scratch) EstimatePackageMergeFork(r1, r2 int, merged pkgcarbon.Chiplet) (*pkgcarbon.Result, error) {
	if sc.est == nil {
		return nil, fmt.Errorf("kernel: EstimatePackageMergeFork on a scratch without a packaging estimator (param-plan or monolith scratch)")
	}
	return sc.est.EstimateMergeFork(r1, r2, merged)
}

// FloorplanStats snapshots the scratch estimator's retained-tree reuse
// counters (zero for scratches without an estimator).
func (sc *Scratch) FloorplanStats() floorplan.TreeStats {
	if sc.est == nil {
		return floorplan.TreeStats{}
	}
	return sc.est.FloorplanStats()
}

// OperationKg returns spec.LifetimeKg(powerW) through the last-value
// memo: the operational term's inputs are piecewise-constant across the
// points a worker evaluates, so the memo collapses almost every call.
func (sc *Scratch) OperationKg(spec *opcarbon.Spec, powerW float64) (float64, error) {
	if sc.opValid && sc.opSpec == spec && sc.opPowerW == powerW {
		return sc.opKg, nil
	}
	kg, err := spec.LifetimeKg(powerW)
	if err != nil {
		return 0, err
	}
	sc.opSpec, sc.opPowerW, sc.opKg, sc.opValid = spec, powerW, kg, true
	return kg, nil
}

// PerturbNodes returns a perturbed database for one evaluation: the
// scratch's private sandbox copy of the plan's database with every node
// reset to its base parameters and mutate applied — the allocation-free
// equivalent of db.Clone(mutate) for per-sample Monte Carlo
// perturbation. The returned DB is only valid until the next
// PerturbNodes call on this scratch.
func (sc *Scratch) PerturbNodes(mutate func(*tech.Node)) *tech.DB {
	if sc.db == nil {
		panic("kernel: PerturbNodes on a sweep scratch; build one with ParamPlan.NewScratch")
	}
	if sc.sb == nil {
		sc.sb = sc.db.NewSandbox()
	}
	return sc.sb.Reset(mutate)
}

// Command ecodse runs the Section VI design-space-exploration workflows
// on a JSON design directory:
//
//	ecodse --design_dir testcases/GA102 --mode sweep    # node sweep + Pareto front
//	ecodse --design_dir testcases/GA102 --mode tornado  # sensitivity analysis
//	ecodse --design_dir testcases/GA102 --mode group    # block-grouping optimizer
//	ecodse --design_dir testcases/GA102 --mode mc       # Monte Carlo uncertainty
//
// The sweep mode needs a node_list.txt in the design directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"ecochip/internal/config"
	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/explore"
	"ecochip/internal/report"
	"ecochip/internal/sensitivity"
	"ecochip/internal/tech"
	"ecochip/internal/uncertainty"
)

func main() {
	designDir := flag.String("design_dir", "", "directory with architecture.json etc. (required)")
	mode := flag.String("mode", "sweep", "sweep | tornado | group | mc")
	rel := flag.Float64("rel", 0.25, "tornado: relative perturbation")
	samples := flag.Int("samples", 500, "mc: Monte Carlo sample count")
	seed := flag.Int64("seed", 2024, "mc: random seed")
	parallel := flag.Int("parallel", 0, "evaluation workers (0 = all CPUs, 1 = serial)")
	progress := flag.Bool("progress", false, "print sweep progress to stderr")
	flag.Parse()
	if *designDir == "" {
		fmt.Fprintln(os.Stderr, "usage: ecodse --design_dir <dir> --mode sweep|tornado|group|mc")
		os.Exit(2)
	}
	var opts []engine.Option
	opts = append(opts, engine.WithWorkers(*parallel))
	if *progress {
		opts = append(opts, engine.WithProgress(func(done, total int) {
			if done%1000 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d points", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}))
	}
	if err := run(*designDir, *mode, *rel, *samples, *seed, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "ecodse:", err)
		os.Exit(1)
	}
}

func run(designDir, mode string, rel float64, samples int, seed int64, w io.Writer, opts []engine.Option) error {
	db := tech.Default()
	system, nodes, err := config.LoadSystem(designDir, db)
	if err != nil {
		return err
	}
	ctx := context.Background()
	switch mode {
	case "sweep":
		return runSweep(ctx, w, system, db, nodes, opts)
	case "tornado":
		return runTornado(ctx, w, system, db, rel, opts)
	case "group":
		return runGroup(ctx, w, system, db, opts)
	case "mc":
		return runMC(ctx, w, system, db, samples, seed, opts)
	}
	return fmt.Errorf("unknown mode %q", mode)
}

func runSweep(ctx context.Context, w io.Writer, system *core.System, db *tech.DB, nodes []int, opts []engine.Option) error {
	if len(nodes) == 0 {
		return fmt.Errorf("sweep mode needs node_list.txt in the design directory")
	}
	points, err := explore.NodeSweepCtx(ctx, system, db, nodes, cost.DefaultParams(), opts...)
	if err != nil {
		return err
	}
	front := explore.ParetoFront(points, explore.ByEmbodied, explore.ByCost)
	t := report.New(fmt.Sprintf("carbon-cost Pareto front (%d of %d candidates)", len(front), len(points)), "",
		"nodes", "cemb_kg", "ctot_kg", "cost_usd", "area_mm2")
	for _, p := range front {
		t.AddRow(p.Label, report.F(p.EmbodiedKg), report.F(p.TotalKg), report.F(p.CostUSD), report.F(p.PackageAreaMM2))
	}
	return t.Fprint(w)
}

func runTornado(ctx context.Context, w io.Writer, system *core.System, db *tech.DB, rel float64, opts []engine.Option) error {
	results, err := sensitivity.TornadoCtx(ctx, system, db, rel, opts...)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("sensitivity tornado (+/-%.0f%%)", rel*100), "",
		"factor", "low_kg", "base_kg", "high_kg", "swing_kg")
	for _, r := range results {
		t.AddRow(r.Factor, report.F(r.LowKg), report.F(r.BaseKg), report.F(r.HighKg), report.F(r.Swing()))
	}
	return t.Fprint(w)
}

func runGroup(ctx context.Context, w io.Writer, system *core.System, db *tech.DB, opts []engine.Option) error {
	plan, err := explore.DisaggregateCtx(ctx, system, db, opts...)
	if err != nil {
		return err
	}
	t := report.New("block grouping plan", "", "group", "blocks")
	for i, g := range plan.Groups {
		t.AddRow(fmt.Sprintf("chiplet%d", i), fmt.Sprint(g))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "embodied carbon: %.2f kg (from %.2f kg, %d merges)\n",
		plan.EmbodiedKg, plan.InitialKg, plan.Steps)
	return err
}

func runMC(ctx context.Context, w io.Writer, system *core.System, db *tech.DB, samples int, seed int64, opts []engine.Option) error {
	d, err := uncertainty.RunCtx(ctx, system, db, uncertainty.DefaultSpread(), samples, seed, opts...)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("embodied-carbon uncertainty (%d samples, seed %d)", samples, seed), "",
		"p5_kg", "p50_kg", "mean_kg", "p95_kg", "relative_spread")
	t.AddRow(report.F(d.P5Kg), report.F(d.P50Kg), report.F(d.MeanKg), report.F(d.P95Kg), report.F(d.RelativeSpread()))
	return t.Fprint(w)
}

package floorplan_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ecochip/internal/floorplan"
)

// Shape-curve Pareto pruning parity on the paper's testcase geometries:
// the retained FlexTree must match the from-scratch PlanFlexible bit
// for bit across perturbation walks over the EPYC and GA102 chiplet
// areas (the external test package reuses chipletAreas from the fuzz
// harness to avoid the floorplan -> testcases import cycle).
func TestFlexTreeTestcaseParity(t *testing.T) {
	epyc, ga102 := chipletAreas(t, 7)
	for _, tc := range []struct {
		name  string
		areas []float64
	}{
		{"EPYC", epyc},
		{"GA102", ga102},
	} {
		blocks := make([]floorplan.Block, len(tc.areas))
		for i, a := range tc.areas {
			blocks[i] = floorplan.Block{Name: fmt.Sprintf("d%d", i), AreaMM2: a}
		}
		var ft floorplan.FlexTree
		rng := rand.New(rand.NewSource(2026))
		for step := 0; step < 80; step++ {
			if step > 0 {
				i := rng.Intn(len(blocks))
				blocks[i].AreaMM2 *= 0.8 + 0.4*rng.Float64()
			}
			want, err := floorplan.PlanFlexible(blocks, 0.5, nil)
			if err != nil {
				t.Fatalf("%s step %d: %v", tc.name, step, err)
			}
			got, err := ft.Plan(blocks, 0.5, nil)
			if err != nil {
				t.Fatalf("%s step %d: %v", tc.name, step, err)
			}
			comparePlans(t, fmt.Sprintf("%s step %d", tc.name, step), want, got)
		}
		if s := ft.Stats(); len(blocks) > 1 && s.FastPath == 0 {
			t.Errorf("%s: perturbation walk never hit the FlexTree fast path: %+v", tc.name, s)
		}
	}
}

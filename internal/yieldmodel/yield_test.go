package yieldmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDieKnownValues(t *testing.T) {
	cases := []struct {
		areaMM2, d0, want float64
	}{
		// Hand-computed: A=100mm^2=1cm^2, D0=0.3, alpha=3:
		// (1 + 0.1)^-3 = 1/1.331
		{100, 0.3, 1 / 1.331},
		// Zero area: perfect yield.
		{0, 0.3, 1},
		// Zero defects: perfect yield.
		{500, 0, 1},
		// A=300mm^2=3cm^2, D0=0.2: (1 + 0.2)^-3 = 1/1.728
		{300, 0.2, 1 / 1.728},
	}
	for _, c := range cases {
		got := Die(c.areaMM2, c.d0)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Die(%g, %g) = %.9f, want %.9f", c.areaMM2, c.d0, got, c.want)
		}
	}
}

func TestDieAlphaInfinityLimit(t *testing.T) {
	// As alpha grows the negative binomial approaches the Poisson model
	// exp(-A*D0).
	areaMM2, d0 := 200.0, 0.2
	poisson := math.Exp(-(areaMM2 / 100) * d0)
	nb := DieAlpha(areaMM2, d0, 1e7)
	if math.Abs(nb-poisson) > 1e-6 {
		t.Errorf("large-alpha NB = %.9f, Poisson = %.9f; should converge", nb, poisson)
	}
}

func TestDiePanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"negative area":    func() { Die(-1, 0.1) },
		"negative defects": func() { Die(1, -0.1) },
		"zero alpha":       func() { DieAlpha(1, 0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: yield is in (0, 1] and monotone decreasing in both area and
// defect density.
func TestDieProperties(t *testing.T) {
	inRange := func(a, d uint16) bool {
		area := float64(a%2000) + 1 // 1..2000 mm^2
		d0 := 0.07 + float64(d%100)/400
		y := Die(area, d0)
		return y > 0 && y <= 1
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
	monoArea := func(a, d uint16) bool {
		area := float64(a%2000) + 1
		d0 := 0.07 + float64(d%100)/400
		return Die(area+50, d0) < Die(area, d0)
	}
	if err := quick.Check(monoArea, nil); err != nil {
		t.Errorf("yield not monotone decreasing in area: %v", err)
	}
	monoD0 := func(a, d uint16) bool {
		area := float64(a%2000) + 1
		d0 := 0.07 + float64(d%100)/400
		return Die(area, d0+0.05) < Die(area, d0)
	}
	if err := quick.Check(monoD0, nil); err != nil {
		t.Errorf("yield not monotone decreasing in defect density: %v", err)
	}
}

// Splitting a die into two halves lowers the silicon spent per good
// system: 2*(A/2)/Y(A/2) < A/Y(A), because Y(A/2) > Y(A). This is the
// core HI advantage the paper builds on (Fig. 2). Note the compound
// probability Y(A/2)^2 is *not* better than Y(A) under negative-binomial
// clustering; the win is in discarded area, which is what C_mfg ~ A/Y
// captures.
func TestSplittingImprovesYieldPerArea(t *testing.T) {
	f := func(a, d uint16) bool {
		area := float64(a%1500) + 10
		d0 := 0.07 + float64(d%100)/400
		wholeCost := area / Die(area, d0)
		splitCost := 2 * (area / 2) / Die(area/2, d0)
		return Die(area/2, d0) > Die(area, d0) && splitCost < wholeCost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayered(t *testing.T) {
	if got := Layered(0.9, 3); math.Abs(got-0.729) > 1e-12 {
		t.Errorf("Layered(0.9, 3) = %g, want 0.729", got)
	}
	if got := Layered(0.9, 0); got != 1 {
		t.Errorf("Layered(0.9, 0) = %g, want 1", got)
	}
	for name, f := range map[string]func(){
		"yield > 1":       func() { Layered(1.1, 2) },
		"negative layers": func() { Layered(0.9, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAssembly3D(t *testing.T) {
	// Two tiers at 0.9 each with one bond at 0.95: 0.9*0.9*0.95.
	got := Assembly3D([]float64{0.9, 0.9}, 0.95)
	want := 0.9 * 0.9 * 0.95
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Assembly3D = %g, want %g", got, want)
	}
	// Single tier: no bond penalty.
	if got := Assembly3D([]float64{0.8}, 0.5); got != 0.8 {
		t.Errorf("single tier Assembly3D = %g, want 0.8", got)
	}
	// Empty: yield 1.
	if got := Assembly3D(nil, 0.9); got != 1 {
		t.Errorf("empty Assembly3D = %g, want 1", got)
	}
}

func TestAssembly3DMoreTiersLowerYield(t *testing.T) {
	tiers := []float64{0.95, 0.95, 0.95, 0.95}
	prev := 1.0
	for n := 1; n <= len(tiers); n++ {
		y := Assembly3D(tiers[:n], 0.98)
		if y >= prev {
			t.Errorf("assembly yield with %d tiers (%g) should be below %g", n, y, prev)
		}
		prev = y
	}
}

func TestAssembly3DPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad bond yield": func() { Assembly3D([]float64{0.9}, 1.5) },
		"bad tier yield": func() { Assembly3D([]float64{1.9}, 0.9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBondYieldFromPitch(t *testing.T) {
	// Larger pitches bond more reliably (Fig. 11d trend).
	if BondYieldFromPitch(10) >= BondYieldFromPitch(45) {
		t.Error("bond yield should increase with pitch")
	}
	// Clamping.
	if BondYieldFromPitch(0.5) != BondYieldFromPitch(1) {
		t.Error("pitch below 1um should clamp")
	}
	if BondYieldFromPitch(100) != BondYieldFromPitch(45) {
		t.Error("pitch above 45um should clamp")
	}
	f := func(p uint8) bool {
		y := BondYieldFromPitch(float64(p%45) + 1)
		return y >= 0.95 && y <= 0.999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero pitch should panic")
		}
	}()
	BondYieldFromPitch(0)
}

func TestKnownGoodDies(t *testing.T) {
	if got := KnownGoodDies(100, 0.85); got != 85 {
		t.Errorf("KnownGoodDies(100, 0.85) = %g, want 85", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative count should panic")
		}
	}()
	KnownGoodDies(-1, 0.5)
}

// Package opcarbon implements the operational-carbon model of Section
// III-F of the ECO-CHIP paper (Eqs. (3) and (14)):
//
//	C_op  = C_src,use * E_use
//	E_use = T_ON * (V_dd * I_leak + alpha * C * V_dd^2 * f)
//
// E_use can be produced three ways, matching the paper's testcases:
// directly (profiled energy, e.g. the GA102's 228 kWh/year), from the
// electrical model of Eq. (14), or from a battery rating and recharge
// cadence (mobile processors).
package opcarbon

import (
	"fmt"
)

// HoursPerYear is the operational year used to convert duty cycles into
// ON-hours.
const HoursPerYear = 24 * 365.0

// Electrical carries the Eq. (14) inputs for systems modeled from first
// principles.
type Electrical struct {
	// Vdd is the supply voltage in volts (Table I: 0.7 - 1.8 V).
	Vdd float64
	// LeakA is I_leak, the total leakage current in amps.
	LeakA float64
	// Activity is alpha, the average switching-activity factor.
	Activity float64
	// CapF is C, the total switched load capacitance in farads.
	CapF float64
	// FreqHz is f, the average use-case frequency.
	FreqHz float64
}

// PowerW returns the average operating power V*I_leak + alpha*C*V^2*f.
func (e Electrical) PowerW() float64 {
	return e.Vdd*e.LeakA + e.Activity*e.CapF*e.Vdd*e.Vdd*e.FreqHz
}

// Validate enforces the Table I voltage range and positivity.
func (e Electrical) Validate() error {
	if e.Vdd < 0.7 || e.Vdd > 1.8 {
		return fmt.Errorf("opcarbon: Vdd %g outside Table I range [0.7, 1.8]", e.Vdd)
	}
	if e.LeakA < 0 || e.CapF < 0 || e.FreqHz < 0 {
		return fmt.Errorf("opcarbon: leakage, capacitance and frequency must be non-negative")
	}
	if e.Activity < 0 || e.Activity > 1 {
		return fmt.Errorf("opcarbon: activity %g outside [0, 1]", e.Activity)
	}
	return nil
}

// Spec is the operating specification of a system.
type Spec struct {
	// DutyCycle is the fraction of wall time the system is ON
	// (Table I: T_ON 5% - 20%).
	DutyCycle float64
	// LifetimeYears is the service life (Table I: 2 - 5 years).
	LifetimeYears float64
	// CarbonIntensity is C_src,use of the usage-phase grid in
	// kg CO2/kWh.
	CarbonIntensity float64

	// Exactly one of the following three energy sources must be set.

	// AnnualEnergyKWh is a directly profiled E_use per year.
	AnnualEnergyKWh float64
	// Elec computes E_use from Eq. (14) and the duty cycle.
	Elec *Electrical
	// Battery derives E_use from a battery rating and recharge cadence.
	Battery *Battery
}

// Battery models battery-operated devices: E_use follows from capacity
// and how often the battery is recharged (Section III-F).
type Battery struct {
	// CapacityWh is the battery capacity in watt-hours.
	CapacityWh float64
	// ChargesPerYear is the number of full charge cycles per year.
	ChargesPerYear float64
	// ChargerEfficiency is the wall-to-battery efficiency in (0, 1].
	ChargerEfficiency float64
}

// AnnualKWh returns the yearly wall energy drawn by the device.
func (b Battery) AnnualKWh() float64 {
	eff := b.ChargerEfficiency
	if eff == 0 {
		eff = 1
	}
	return b.CapacityWh * b.ChargesPerYear / eff / 1000
}

// Validate enforces ranges.
func (s Spec) Validate() error {
	if s.DutyCycle < 0 || s.DutyCycle > 1 {
		return fmt.Errorf("opcarbon: duty cycle %g outside [0, 1]", s.DutyCycle)
	}
	if s.LifetimeYears <= 0 || s.LifetimeYears > 30 {
		return fmt.Errorf("opcarbon: lifetime %g years outside (0, 30]", s.LifetimeYears)
	}
	if s.CarbonIntensity < 0.030 || s.CarbonIntensity > 0.700 {
		return fmt.Errorf("opcarbon: carbon intensity %g outside [0.030, 0.700]", s.CarbonIntensity)
	}
	sources := 0
	if s.AnnualEnergyKWh > 0 {
		sources++
	}
	if s.Elec != nil {
		sources++
		if err := s.Elec.Validate(); err != nil {
			return err
		}
		if s.DutyCycle == 0 {
			return fmt.Errorf("opcarbon: electrical model requires a positive duty cycle")
		}
	}
	if s.Battery != nil {
		sources++
		if s.Battery.CapacityWh <= 0 || s.Battery.ChargesPerYear <= 0 {
			return fmt.Errorf("opcarbon: battery capacity and charge rate must be positive")
		}
		if s.Battery.ChargerEfficiency < 0 || s.Battery.ChargerEfficiency > 1 {
			return fmt.Errorf("opcarbon: charger efficiency %g outside [0, 1]", s.Battery.ChargerEfficiency)
		}
	}
	if sources != 1 {
		return fmt.Errorf("opcarbon: exactly one energy source must be specified, got %d", sources)
	}
	return nil
}

// AnnualEnergyKWhTotal resolves E_use per year from whichever source the
// spec carries, plus the extra always-on power overhead (e.g. inter-die
// NoC routers) in watts.
func (s Spec) AnnualEnergyKWhTotal(extraPowerW float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if extraPowerW < 0 {
		return 0, fmt.Errorf("opcarbon: extra power must be non-negative, got %g", extraPowerW)
	}
	var base float64
	switch {
	case s.AnnualEnergyKWh > 0:
		base = s.AnnualEnergyKWh
	case s.Elec != nil:
		base = s.Elec.PowerW() * s.DutyCycle * HoursPerYear / 1000
	default:
		base = s.Battery.AnnualKWh()
	}
	duty := s.DutyCycle
	if duty == 0 {
		duty = 1 // direct/battery energy already encodes usage time
	}
	overhead := extraPowerW * duty * HoursPerYear / 1000
	return base + overhead, nil
}

// AnnualKg returns C_op for one year of use.
func (s Spec) AnnualKg(extraPowerW float64) (float64, error) {
	e, err := s.AnnualEnergyKWhTotal(extraPowerW)
	if err != nil {
		return 0, err
	}
	return e * s.CarbonIntensity, nil
}

// LifetimeKg returns lifetime * C_op, the operational term of Eq. (1).
func (s Spec) LifetimeKg(extraPowerW float64) (float64, error) {
	annual, err := s.AnnualKg(extraPowerW)
	if err != nil {
		return 0, err
	}
	return annual * s.LifetimeYears, nil
}

package cost

import (
	"math"
	"testing"
	"testing/quick"

	"ecochip/internal/tech"
	"ecochip/internal/wafer"
	"ecochip/internal/yieldmodel"
)

func n(nm int) *tech.Node { return tech.Default().MustGet(nm) }

func TestDieUSDKnownValue(t *testing.T) {
	p := DefaultParams()
	node := n(7)
	area := 100.0
	dpw := p.Wafer.DiesPerWafer(area)
	y := yieldmodel.Die(area, node.DefectDensity)
	want := node.WaferCostUSD / (float64(dpw) * y)
	got, err := DieUSD(node, area, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DieUSD = %g, want %g", got, want)
	}
}

func TestDieUSDErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := DieUSD(n(7), 0, p); err == nil {
		t.Error("zero area should fail")
	}
	small := p
	small.Wafer = wafer.Wafer{DiameterMM: 25}
	if _, err := DieUSD(n(7), 2500, small); err == nil {
		t.Error("die larger than wafer should fail")
	}
	bad := p
	bad.Alpha = 0
	if _, err := DieUSD(n(7), 100, bad); err == nil {
		t.Error("bad alpha should fail")
	}
	bad = p
	bad.BondUSDPerChiplet = -1
	if _, err := DieUSD(n(7), 100, bad); err == nil {
		t.Error("negative bond cost should fail")
	}
}

// Fig. 15(b) ingredient: die cost is superlinear in area (yield), so
// splitting a die lowers total silicon cost.
func TestSplittingLowersDieCost(t *testing.T) {
	p := DefaultParams()
	f := func(a uint16) bool {
		area := float64(a%500) + 50
		whole, err1 := DieUSD(n(7), area, p)
		half, err2 := DieUSD(n(7), area/2, p)
		return err1 == nil && err2 == nil && 2*half < whole
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Fig. 15(a) ingredient: older nodes have cheaper wafers and better
// yields, so the same area costs less.
func TestOlderNodesCheaper(t *testing.T) {
	p := DefaultParams()
	sizes := tech.DefaultSizes()
	for i := 1; i < len(sizes); i++ {
		newer, err := DieUSD(n(sizes[i-1]), 100, p)
		if err != nil {
			t.Fatal(err)
		}
		older, err := DieUSD(n(sizes[i]), 100, p)
		if err != nil {
			t.Fatal(err)
		}
		if older >= newer {
			t.Errorf("100mm^2 at %dnm ($%g) should cost less than %dnm ($%g)",
				sizes[i], older, sizes[i-1], newer)
		}
	}
}

func TestAssemblyUSD(t *testing.T) {
	p := DefaultParams()
	// RDL at $2/cm^2 over 500 mm^2 (5 cm^2) + 3 chiplets at $1.5,
	// yield 0.9: (10 + 4.5)/0.9.
	got, err := AssemblyUSD("RDL", 500, 3, 0.9, p)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0*5 + 1.5*3) / 0.9
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AssemblyUSD = %g, want %g", got, want)
	}
	if _, err := AssemblyUSD("unknown-arch", 500, 3, 0.9, p); err == nil {
		t.Error("unknown architecture should fail")
	}
	if _, err := AssemblyUSD("RDL", 500, 0, 0.9, p); err == nil {
		t.Error("zero chiplets should fail")
	}
	if _, err := AssemblyUSD("RDL", 500, 3, 0, p); err == nil {
		t.Error("zero yield should fail")
	}
}

func TestAssemblyOrderedByComplexity(t *testing.T) {
	p := DefaultParams()
	rdl, _ := AssemblyUSD("RDL", 500, 3, 1, p)
	emib, _ := AssemblyUSD("EMIB", 500, 3, 1, p)
	passive, _ := AssemblyUSD("passive-interposer", 500, 3, 1, p)
	active, _ := AssemblyUSD("active-interposer", 500, 3, 1, p)
	if !(rdl < emib && emib < passive && passive < active) {
		t.Errorf("assembly cost should order RDL < EMIB < passive < active: %g %g %g %g",
			rdl, emib, passive, active)
	}
}

func TestNRE(t *testing.T) {
	p := DefaultParams()
	got, err := NREUSDPerPart(n(7), 100_000, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("7nm mask NRE per part = %g, want 100", got)
	}
	if _, err := NREUSDPerPart(n(7), 0, p); err == nil {
		t.Error("zero parts should fail")
	}
	stranger := &tech.Node{Nm: 99}
	if _, err := NREUSDPerPart(stranger, 1, p); err == nil {
		t.Error("unknown node mask cost should fail")
	}
}

func TestSystemUSD(t *testing.T) {
	p := DefaultParams()
	dies := []Die{
		{Node: n(7), AreaMM2: 250},
		{Node: n(14), AreaMM2: 80},
	}
	b, err := SystemUSD(dies, "RDL", 400, 0.95, 100_000, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.DiesUSD <= 0 || b.AssemblyUSD <= 0 || b.NREUSD <= 0 {
		t.Errorf("all cost components should be positive: %+v", b)
	}
	if math.Abs(b.TotalUSD()-(b.DiesUSD+b.AssemblyUSD+b.NREUSD)) > 1e-12 {
		t.Error("TotalUSD must sum the components")
	}
	if _, err := SystemUSD(nil, "RDL", 400, 0.95, 1, p); err == nil {
		t.Error("empty system should fail")
	}
	if _, err := SystemUSD(dies, "bogus", 400, 0.95, 1, p); err == nil {
		t.Error("unknown arch should fail")
	}
	if _, err := SystemUSD([]Die{{Node: n(7), AreaMM2: -1}}, "RDL", 400, 0.95, 1, p); err == nil {
		t.Error("bad die should fail")
	}
}

// Higher volume amortizes NRE: total system cost falls with volume.
func TestVolumeAmortizesNRE(t *testing.T) {
	p := DefaultParams()
	dies := []Die{{Node: n(7), AreaMM2: 250}}
	low, err := SystemUSD(dies, "RDL", 300, 1, 1_000, p)
	if err != nil {
		t.Fatal(err)
	}
	high, err := SystemUSD(dies, "RDL", 300, 1, 1_000_000, p)
	if err != nil {
		t.Fatal(err)
	}
	if high.TotalUSD() >= low.TotalUSD() {
		t.Errorf("1M-part cost (%g) should be below 1k-part cost (%g)", high.TotalUSD(), low.TotalUSD())
	}
	if high.DiesUSD != low.DiesUSD {
		t.Error("die cost should be volume-independent in this model")
	}
}

// The pre-validated Assembler must be bit-identical to AssemblyUSD.
func TestAssemblerMatchesAssemblyUSD(t *testing.T) {
	p := DefaultParams()
	for _, arch := range []string{"RDL", "EMIB", "passive-interposer", "active-interposer", "3D", "monolithic"} {
		for _, nc := range []int{1, 2, 5} {
			a, err := NewAssembler(arch, nc, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, area := range []float64{10, 123.456, 900} {
				for _, y := range []float64{0.3, 0.75, 1} {
					want, err := AssemblyUSD(arch, area, nc, y, p)
					if err != nil {
						t.Fatal(err)
					}
					got, err := a.USD(area, y)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(want) != math.Float64bits(got) {
						t.Errorf("%s nc=%d area=%g y=%g: Assembler %v != AssemblyUSD %v", arch, nc, area, y, got, want)
					}
				}
			}
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := NewAssembler("warp-core", 2, p); err == nil {
		t.Error("unknown architecture should fail")
	}
	if _, err := NewAssembler("RDL", 0, p); err == nil {
		t.Error("zero chiplets should fail")
	}
	a, err := NewAssembler("RDL", 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.USD(-1, 0.9); err == nil {
		t.Error("negative area should fail")
	}
	if _, err := a.USD(100, 0); err == nil {
		t.Error("zero yield should fail")
	}
	if _, err := a.USD(100, 1.5); err == nil {
		t.Error("yield above 1 should fail")
	}
}

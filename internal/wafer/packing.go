package wafer

import (
	"fmt"
	"math"
)

// The paper's Eq. (7) approximates dies-per-wafer analytically. This file
// adds an exact row-by-row packing count for rectangular dies with scribe
// lanes — useful both as a cross-check of the approximation and for
// chiplets whose aspect ratio is far from square.

// DefaultScribeMM is a typical scribe-lane (saw street) width.
const DefaultScribeMM = 0.1

// PackRect counts the dies of the given width x height (mm) that fit on
// the wafer when placed on a regular grid with the given scribe-lane
// spacing, rows scanned across the wafer circle. A die fits if all four
// of its corners lie inside the wafer circle.
func (w Wafer) PackRect(dieW, dieH, scribeMM float64) (int, error) {
	if dieW <= 0 || dieH <= 0 {
		return 0, fmt.Errorf("wafer: die dimensions must be positive, got %gx%g", dieW, dieH)
	}
	if scribeMM < 0 {
		return 0, fmt.Errorf("wafer: scribe width must be non-negative, got %g", scribeMM)
	}
	r := w.DiameterMM / 2
	pitchX, pitchY := dieW+scribeMM, dieH+scribeMM

	count := 0
	// Grid aligned to the wafer center; scan rows from the bottom.
	startY := -math.Floor(r/pitchY) * pitchY
	for y := startY; y+dieH <= r; y += pitchY {
		// The row spans [y, y+dieH]; the tighter circle chord bounds it.
		worstY := math.Max(math.Abs(y), math.Abs(y+dieH))
		if worstY >= r {
			continue
		}
		halfChord := math.Sqrt(r*r - worstY*worstY)
		if 2*halfChord < dieW {
			continue
		}
		// Dies centered on the chord.
		count += int(math.Floor((2*halfChord + scribeMM) / pitchX))
	}
	return count, nil
}

// PackSquare is PackRect for a square die of the given area with the
// default scribe lane.
func (w Wafer) PackSquare(dieAreaMM2 float64) (int, error) {
	if dieAreaMM2 <= 0 {
		return 0, fmt.Errorf("wafer: die area must be positive, got %g", dieAreaMM2)
	}
	side := math.Sqrt(dieAreaMM2)
	return w.PackRect(side, side, DefaultScribeMM)
}

// ApproximationError returns the relative difference between the Eq. (7)
// analytical DPW and the exact packing count for a square die:
// (analytic - packed) / packed. Positive values mean Eq. (7) is
// optimistic.
func (w Wafer) ApproximationError(dieAreaMM2 float64) (float64, error) {
	packed, err := w.PackSquare(dieAreaMM2)
	if err != nil {
		return 0, err
	}
	if packed == 0 {
		return 0, fmt.Errorf("wafer: die of %g mm^2 does not pack on the wafer", dieAreaMM2)
	}
	analytic := w.DiesPerWafer(dieAreaMM2)
	return float64(analytic-packed) / float64(packed), nil
}

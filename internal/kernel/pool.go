package kernel

import (
	"sync"

	"ecochip/internal/floorplan"
)

// ScratchPool is a step-spanning pool of worker scratches, modeled on
// the scratch pooling of explore's CompiledPlan: a search that issues
// many engine batches (the greedy steps of a Disaggregate run, the
// requests of a serving front-end) draws warm scratches from the pool
// instead of rebuilding estimators per batch, so retained state — the
// packaging estimator's floorplan trees, its per-node communication
// memo and its per-area package-term memo — survives across the whole
// search. Safe because every retained cache verifies or is keyed by its
// exact inputs, so a reused scratch can only be faster, never different.
//
// The pool also owns the floorplan-stats accounting: Put folds the
// increment of each scratch's retained-tree counters into the pool
// totals (FloorplanStats), so callers get aggregate reuse rates without
// double counting a scratch's history.
type ScratchPool struct {
	newFn func() (*Scratch, error)

	// A mutex-guarded free list, not a sync.Pool: the pool's whole point
	// is RETAINING warm state across batches, and sync.Pool may drop its
	// contents at any GC — which would silently discard the memos and
	// trees mid-search (and make reuse statistics GC-timing-dependent).
	// Pools are search-scoped, so the free list's lifetime is trivially
	// bounded.
	mu     sync.Mutex
	free   []*Scratch
	reuses uint64
	folded floorplan.TreeStats
}

// NewScratchPool builds a pool whose scratches come from newFn.
func NewScratchPool(newFn func() (*Scratch, error)) *ScratchPool {
	return &ScratchPool{newFn: newFn}
}

// Get draws a warm scratch from the pool or builds a fresh one.
func (p *ScratchPool) Get() (*Scratch, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sc := p.free[n-1]
		p.free = p.free[:n-1]
		p.reuses++
		p.mu.Unlock()
		return sc, nil
	}
	p.mu.Unlock()
	return p.newFn()
}

// Put folds the scratch's new floorplan work into the pool totals and
// returns it for reuse.
func (p *ScratchPool) Put(sc *Scratch) {
	cur := sc.FloorplanStats()
	delta := cur.Delta(sc.fpFolded)
	sc.fpFolded = cur
	p.mu.Lock()
	p.folded.Add(delta)
	p.free = append(p.free, sc)
	p.mu.Unlock()
}

// Reuses returns how many Get calls were served by a pooled scratch.
func (p *ScratchPool) Reuses() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reuses
}

// FloorplanStats returns the folded retained-tree counters of every
// scratch returned through Put.
func (p *ScratchPool) FloorplanStats() floorplan.TreeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.folded
}

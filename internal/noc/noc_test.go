package noc

import (
	"testing"
	"testing/quick"

	"ecochip/internal/tech"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{FlitWidthBits: 0, Ports: 5, VirtualChannels: 4, BufferDepthFlits: 4},
		{FlitWidthBits: 8192, Ports: 5, VirtualChannels: 4, BufferDepthFlits: 4},
		{FlitWidthBits: 512, Ports: 1, VirtualChannels: 4, BufferDepthFlits: 4},
		{FlitWidthBits: 512, Ports: 5, VirtualChannels: 0, BufferDepthFlits: 4},
		{FlitWidthBits: 512, Ports: 5, VirtualChannels: 4, BufferDepthFlits: 0},
		{FlitWidthBits: 512, Ports: 32, VirtualChannels: 4, BufferDepthFlits: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate should reject %+v", c)
		}
	}
}

func TestTransistorsHandCount(t *testing.T) {
	// 2 ports, 1 VC, depth 1, 64-bit flit:
	// buffers  = 2*1*1*64*8   = 1024
	// crossbar = 4*64*10      = 2560
	// alloc    = (4*1+4)*30   = 240
	// links    = 2*64*16      = 2048
	c := Config{FlitWidthBits: 64, Ports: 2, VirtualChannels: 1, BufferDepthFlits: 1}
	got, err := Transistors(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 1024.0 + 2560 + 240 + 2048
	if got != want {
		t.Errorf("Transistors = %g, want %g", got, want)
	}
}

func TestTransistorsGrowWithEveryKnob(t *testing.T) {
	base := DefaultConfig()
	baseT, _ := Transistors(base)
	grow := []func(Config) Config{
		func(c Config) Config { c.FlitWidthBits *= 2; return c },
		func(c Config) Config { c.Ports++; return c },
		func(c Config) Config { c.VirtualChannels++; return c },
		func(c Config) Config { c.BufferDepthFlits *= 2; return c },
	}
	for i, g := range grow {
		bigger, err := Transistors(g(base))
		if err != nil {
			t.Fatal(err)
		}
		if bigger <= baseT {
			t.Errorf("knob %d: transistors %g should exceed base %g", i, bigger, baseT)
		}
	}
}

// The magnitude must land in the range Stow et al. report: a 512-bit
// 5-port interposer router is sub-mm^2 in advanced nodes and below
// ~2 mm^2 at 65 nm.
func TestAreaMagnitude(t *testing.T) {
	db := tech.Default()
	a7, err := AreaMM2(DefaultConfig(), db.MustGet(7))
	if err != nil {
		t.Fatal(err)
	}
	a65, err := AreaMM2(DefaultConfig(), db.MustGet(65))
	if err != nil {
		t.Fatal(err)
	}
	if a7 <= 0 || a7 > 0.1 {
		t.Errorf("7nm router area %g mm^2 outside plausible (0, 0.1]", a7)
	}
	if a65 <= a7 || a65 > 2 {
		t.Errorf("65nm router area %g mm^2 should be in (%g, 2]", a65, a7)
	}
}

// Router area shrinks monotonically with newer nodes (the reason passive
// interposers with in-chiplet routers have lower routing overhead,
// Section V-B(1)).
func TestAreaMonotoneAcrossNodes(t *testing.T) {
	db := tech.Default()
	sizes := db.Sizes()
	for i := 1; i < len(sizes); i++ {
		newer, _ := AreaMM2(DefaultConfig(), db.MustGet(sizes[i-1]))
		older, _ := AreaMM2(DefaultConfig(), db.MustGet(sizes[i]))
		if older <= newer {
			t.Errorf("router area at %dnm (%g) should exceed %dnm (%g)",
				sizes[i], older, sizes[i-1], newer)
		}
	}
}

func TestPowerW(t *testing.T) {
	db := tech.Default()
	p7, err := PowerW(DefaultConfig(), db.MustGet(7), DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	if p7 <= 0 || p7 > 1 {
		t.Errorf("7nm router power %g W outside plausible (0, 1]", p7)
	}
	// Older node at higher Vdd burns more dynamic power per router.
	p65, err := PowerW(DefaultConfig(), db.MustGet(65), DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	if p65 <= p7 {
		t.Errorf("65nm router power %g should exceed 7nm %g (V^2 and C scaling)", p65, p7)
	}
}

func TestPowerErrors(t *testing.T) {
	n := tech.Default().MustGet(7)
	if _, err := PowerW(DefaultConfig(), n, PowerParams{FrequencyHz: 0, Activity: 0.2}); err == nil {
		t.Error("zero frequency should fail")
	}
	if _, err := PowerW(DefaultConfig(), n, PowerParams{FrequencyHz: 1e9, Activity: 2}); err == nil {
		t.Error("activity > 1 should fail")
	}
	bad := DefaultConfig()
	bad.Ports = 0
	if _, err := PowerW(bad, n, DefaultPowerParams()); err == nil {
		t.Error("invalid config should fail")
	}
}

// Property: power scales linearly with frequency at fixed activity.
func TestPowerLinearInFrequency(t *testing.T) {
	n := tech.Default().MustGet(14)
	f := func(raw uint8) bool {
		freq := float64(raw%100+1) * 1e7
		p1, err1 := PowerW(DefaultConfig(), n, PowerParams{FrequencyHz: freq, Activity: 0.2})
		p2, err2 := PowerW(DefaultConfig(), n, PowerParams{FrequencyHz: 2 * freq, Activity: 0.2})
		if err1 != nil || err2 != nil {
			return false
		}
		// Leakage does not scale with f, so p2 < 2*p1 but p2 > p1.
		return p2 > p1 && p2 < 2*p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPHYSmallerThanRouter(t *testing.T) {
	db := tech.Default()
	for _, nm := range db.Sizes() {
		n := db.MustGet(nm)
		phy, err := PHYAreaMM2(DefaultConfig(), n)
		if err != nil {
			t.Fatal(err)
		}
		router, err := AreaMM2(DefaultConfig(), n)
		if err != nil {
			t.Fatal(err)
		}
		if phy <= 0 || phy >= router {
			t.Errorf("%dnm: PHY area %g should be in (0, router area %g)", nm, phy, router)
		}
	}
}

func TestPHYErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.FlitWidthBits = -1
	if _, err := PHYAreaMM2(bad, tech.Default().MustGet(7)); err == nil {
		t.Error("invalid config should fail")
	}
}

package report

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the table as a GitHub-flavored markdown table,
// with the title as a heading and the note as a caption paragraph —
// convenient for pasting experiment results into EXPERIMENTS.md-style
// documents.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", t.Note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

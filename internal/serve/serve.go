// Package serve is the long-lived what-if serving layer: a Server
// compiles one SweepPlan / ParamPlan / DisaggregateSearch per (system
// shape, db version) pair — keyed by the explore content hashes — into
// size-bounded single-flight LRU caches, and answers what-if requests
// (node swap, area/volume perturbation, disaggregation search, sweep
// fronts) off warm plans. Requests fan across the engine's worker pool
// and share base tabulations and pooled scratches, so a fleet of
// near-identical what-ifs pays compile cost once and amortized
// evaluation cost per request; every warm answer carries the exact
// float bits of a cold compile-and-run (pinned by the parity suite).
package serve

import (
	"context"
	"fmt"
	"time"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/explore"
	"ecochip/internal/kernel"
	"ecochip/internal/lru"
	"ecochip/internal/shard"
	"ecochip/internal/tech"
)

// DefaultPlanCacheSize bounds each of the three plan caches when the
// config does not say otherwise. Compiled plans are small relative to
// the systems they price (a few MB at EPYC scale including pooled
// scratches), so the default favors hit rate.
const DefaultPlanCacheSize = 64

// Config tunes a Server. The zero value is production-usable.
type Config struct {
	// PlanCacheSize bounds each plan cache (sweep, param, disaggregate)
	// separately: 0 selects DefaultPlanCacheSize, negative means
	// unbounded.
	PlanCacheSize int
	// Workers caps the engine worker fan-out of one request (sweeps,
	// fronts, disaggregation steps). 0 = the engine default
	// (GOMAXPROCS). Results never depend on it.
	Workers int
	// StreamReplicas is the number of in-process shard replicas a
	// streamed front run fans blocks across (default 2). All replicas
	// share the server's warm plan — the loopback serving shape of the
	// shard lease protocol.
	StreamReplicas int
	// StreamBlockSize is the per-block quantum of streamed front runs
	// (default: the shard protocol default, 512 points).
	StreamBlockSize int
	// MaxInflight bounds concurrently admitted requests per family
	// (sweep, what-if, disaggregate, stream): 0 selects
	// DefaultMaxInflight, negative disables admission control entirely.
	// An arrival past the bound queues for QueueTimeout, then is shed
	// with an *OverloadError (HTTP 429 + Retry-After).
	MaxInflight int
	// QueueTimeout is how long an over-bound arrival may wait for a slot
	// before shedding (0 = DefaultQueueTimeout).
	QueueTimeout time.Duration
}

func (c Config) withDefaults() Config {
	switch {
	case c.PlanCacheSize == 0:
		c.PlanCacheSize = DefaultPlanCacheSize
	case c.PlanCacheSize < 0:
		c.PlanCacheSize = 0 // lru: unbounded
	}
	if c.StreamReplicas <= 0 {
		c.StreamReplicas = 2
	}
	return c
}

// paramEntry is one cached parameter plan with its scratch pool: the
// pool spans requests, so warm perturbations reuse the arena (and its
// operational-term memo) instead of rebuilding per call.
type paramEntry struct {
	plan *kernel.ParamPlan
	pool *kernel.ScratchPool
}

// Stats snapshots the server's three plan caches and the admission
// gates.
type Stats struct {
	// Sweeps / Params / Disaggregates are the per-family cache counters.
	Sweeps, Params, Disaggregates lru.Stats
	// Admission is the per-family overload-shedding snapshot.
	Admission AdmissionStats
}

// Server answers what-if requests off content-keyed warm plans. Safe
// for concurrent use; all methods may be called from many goroutines.
type Server struct {
	db     *tech.DB
	keyer  *explore.Keyer
	cfg    Config
	sweeps *lru.Cache[*explore.CompiledPlan]
	params *lru.Cache[*paramEntry]
	disagg *lru.Cache[*explore.DisaggregateSearch]
	admit  *admitter
}

// NewServer builds a server over one technology database version.
// Requests carry systems; the database (and hence every plan key) is
// fixed per server — a db upgrade is a new server whose keys all
// differ, which is the cache-invalidation story.
func NewServer(db *tech.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		db:     db,
		keyer:  explore.NewKeyer(db),
		cfg:    cfg,
		sweeps: lru.New[*explore.CompiledPlan](cfg.PlanCacheSize),
		params: lru.New[*paramEntry](cfg.PlanCacheSize),
		disagg: lru.New[*explore.DisaggregateSearch](cfg.PlanCacheSize),
		admit:  newAdmitter(cfg.MaxInflight, cfg.QueueTimeout),
	}
}

// Stats snapshots the plan-cache and admission counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sweeps:        s.sweeps.Stats(),
		Params:        s.params.Stats(),
		Disaggregates: s.disagg.Stats(),
		Admission:     s.admit.stats(),
	}
}

func (s *Server) engineOpts() []engine.Option {
	if s.cfg.Workers > 0 {
		return []engine.Option{engine.WithWorkers(s.cfg.Workers)}
	}
	return nil
}

// sweepPlan resolves (or compiles, single-flight) the sweep plan of a
// request.
func (s *Server) sweepPlan(sys *core.System, nodes []int, cp cost.Params) (string, *explore.CompiledPlan, error) {
	key, err := s.keyer.SweepKey(sys, nodes, cp)
	if err != nil {
		return "", nil, err
	}
	plan, err := s.sweeps.GetOrBuild(key, func() (*explore.CompiledPlan, error) {
		return explore.Compile(sys, s.db, nodes, cp)
	})
	return key, plan, err
}

// ParseObjectives maps request objective names to shard objectives:
// "embodied", "total", "cost", "area".
func ParseObjectives(names []string) ([]shard.Objective, error) {
	objs := make([]shard.Objective, len(names))
	for i, n := range names {
		switch n {
		case "embodied":
			objs[i] = shard.ObjEmbodied
		case "total":
			objs[i] = shard.ObjTotal
		case "cost":
			objs[i] = shard.ObjCost
		case "area":
			objs[i] = shard.ObjArea
		default:
			return nil, fmt.Errorf(`serve: unknown objective %q (want "embodied", "total", "cost" or "area")`, n)
		}
	}
	return objs, nil
}

// SweepRequest asks for a node sweep of one system: every combination
// of Nodes across the system's chiplets, or — with Objectives set —
// only the Pareto front over them.
type SweepRequest struct {
	// System is the design under study (the full core description; its
	// content, not its name, keys the plan cache).
	System *core.System `json:"system"`
	// Nodes is the candidate node list (nm), the sweep's radix.
	Nodes []int `json:"nodes"`
	// Cost overrides the default cost parameters when set.
	Cost *cost.Params `json:"cost,omitempty"`
	// Objectives, when non-empty, reduces the response to the Pareto
	// front under these objectives ("embodied", "total", "cost",
	// "area").
	Objectives []string `json:"objectives,omitempty"`
}

func (r *SweepRequest) costParams() cost.Params {
	if r.Cost != nil {
		return *r.Cost
	}
	return cost.DefaultParams()
}

// SweepResponse carries the sweep's points (all of them, or the front).
type SweepResponse struct {
	// Key is the plan's content key — the cache identity the request
	// resolved to.
	Key string `json:"key"`
	// Total is the full combination count the plan covers.
	Total int `json:"total"`
	// Front reports whether Points is a Pareto front (true) or the full
	// mixed-radix point slice (false).
	Front bool `json:"front"`
	// Points are the sweep results, bit-identical to a cold
	// explore run of the same request.
	Points []explore.Point `json:"points"`
}

// Sweep runs a (possibly warm) compiled sweep.
func (s *Server) Sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	release, err := s.admit.sweep.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if req.System == nil {
		return nil, fmt.Errorf("serve: sweep request carries no system")
	}
	key, plan, err := s.sweepPlan(req.System, req.Nodes, req.costParams())
	if err != nil {
		return nil, err
	}
	resp := &SweepResponse{Key: key, Total: plan.Combos()}
	if len(req.Objectives) > 0 {
		objs, err := ParseObjectives(req.Objectives)
		if err != nil {
			return nil, err
		}
		ms, err := shard.ObjectiveMetrics(objs)
		if err != nil {
			return nil, err
		}
		front, _, err := plan.ParetoFrontCtx(ctx, ms, s.engineOpts()...)
		if err != nil {
			return nil, err
		}
		resp.Front = true
		resp.Points = front
		return resp, nil
	}
	pts, err := plan.RunCtx(ctx, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	resp.Points = pts
	return resp, nil
}

// WhatIfRequest is one interactive question about a system. Exactly one
// of the two question families must be posed:
//
//   - Swap (with Nodes): "what if these chiplets moved to these nodes?"
//     Answered off the warm sweep plan via a single-point Gray-code
//     inversion; every node involved must be in Nodes.
//   - AreaScale / VolumeScale: "what if this die grew 10%?", "what if
//     we built 1M units?" Answered off the warm parameter plan with the
//     matching dirty set, so an amortization question recomputes no die
//     sub-model at all.
type WhatIfRequest struct {
	System *core.System `json:"system"`
	// Nodes is the sweep plan's candidate node list; required for Swap
	// (it fixes the plan the answer is served from).
	Nodes []int `json:"nodes,omitempty"`
	// Cost overrides the default cost parameters (swap path only).
	Cost *cost.Params `json:"cost,omitempty"`
	// Swap maps chiplet names to their what-if node (nm). Unnamed
	// chiplets keep their current node.
	Swap map[string]int `json:"swap,omitempty"`
	// AreaScale maps chiplet names to a transistor-budget scale factor.
	AreaScale map[string]float64 `json:"areaScale,omitempty"`
	// VolumeScale scales the system volume and every chiplet's
	// manufactured parts (0 = untouched).
	VolumeScale float64 `json:"volumeScale,omitempty"`
}

// WhatIfResponse is the answer to one what-if. Point is set for swap
// questions (full sweep-point shape, including dollar cost); Totals for
// perturbation questions (the carbon/area/yield decomposition of the
// parameter plan).
type WhatIfResponse struct {
	Key string `json:"key"`
	// Source names the plan family that served the answer: "sweep" or
	// "param".
	Source string         `json:"source"`
	Point  *explore.Point `json:"point,omitempty"`
	Totals *kernel.Totals `json:"totals,omitempty"`
}

// WhatIf answers one what-if question off the matching warm plan.
func (s *Server) WhatIf(ctx context.Context, req *WhatIfRequest) (*WhatIfResponse, error) {
	release, err := s.admit.whatif.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if req.System == nil {
		return nil, fmt.Errorf("serve: what-if request carries no system")
	}
	swap := len(req.Swap) > 0
	perturb := len(req.AreaScale) > 0 || req.VolumeScale != 0
	switch {
	case swap && perturb:
		return nil, fmt.Errorf("serve: a what-if poses either a node swap or a perturbation, not both")
	case swap:
		return s.whatIfSwap(ctx, req)
	case perturb:
		return s.whatIfPerturb(ctx, req)
	default:
		return nil, fmt.Errorf("serve: empty what-if (set swap, areaScale or volumeScale)")
	}
}

func (s *Server) whatIfSwap(ctx context.Context, req *WhatIfRequest) (*WhatIfResponse, error) {
	if len(req.Nodes) == 0 {
		return nil, fmt.Errorf("serve: a swap what-if needs the candidate node list (nodes)")
	}
	for name := range req.Swap {
		if chipletIndex(req.System, name) < 0 {
			return nil, fmt.Errorf("serve: swap names unknown chiplet %q", name)
		}
	}
	key, plan, err := s.sweepPlan(req.System, req.Nodes, req.costParams())
	if err != nil {
		return nil, err
	}
	assignment := make([]int, len(req.System.Chiplets))
	for i, c := range req.System.Chiplets {
		assignment[i] = c.NodeNm
		if nm, ok := req.Swap[c.Name]; ok {
			assignment[i] = nm
		}
	}
	pt, err := plan.EvalPoint(ctx, assignment)
	if err != nil {
		return nil, err
	}
	return &WhatIfResponse{Key: key, Source: "sweep", Point: &pt}, nil
}

func (r *WhatIfRequest) costParams() cost.Params {
	if r.Cost != nil {
		return *r.Cost
	}
	return cost.DefaultParams()
}

func chipletIndex(s *core.System, name string) int {
	for i, c := range s.Chiplets {
		if c.Name == name {
			return i
		}
	}
	return -1
}

func (s *Server) whatIfPerturb(ctx context.Context, req *WhatIfRequest) (*WhatIfResponse, error) {
	key, err := s.keyer.ParamKey(req.System)
	if err != nil {
		return nil, err
	}
	entry, err := s.params.GetOrBuild(key, func() (*paramEntry, error) {
		plan, err := kernel.CompileParams(req.System, s.db)
		if err != nil {
			return nil, err
		}
		return &paramEntry{plan: plan, pool: kernel.NewScratchPool(plan.NewScratch)}, nil
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Build the perturbed system the way the tornado factors do: a
	// shallow clone with its own chiplet slice, dirty flags matching
	// exactly what was touched.
	sys := *req.System
	sys.Chiplets = append([]core.Chiplet(nil), req.System.Chiplets...)
	var dirty kernel.Dirty
	if len(req.AreaScale) > 0 {
		dirty |= kernel.DirtyAreas
		for name, f := range req.AreaScale {
			i := chipletIndex(&sys, name)
			if i < 0 {
				return nil, fmt.Errorf("serve: areaScale names unknown chiplet %q", name)
			}
			if f <= 0 {
				return nil, fmt.Errorf("serve: areaScale[%q] = %v, want > 0", name, f)
			}
			sys.Chiplets[i].Transistors *= f
		}
	}
	if req.VolumeScale != 0 {
		if req.VolumeScale < 0 {
			return nil, fmt.Errorf("serve: volumeScale = %v, want > 0", req.VolumeScale)
		}
		dirty |= kernel.DirtyVolume
		vol := sys.SystemVolume
		if vol == 0 {
			vol = core.DefaultVolume
		}
		sys.SystemVolume = max(1, int(float64(vol)*req.VolumeScale))
		for i := range sys.Chiplets {
			parts := sys.Chiplets[i].ManufacturedParts
			if parts == 0 {
				parts = core.DefaultVolume
			}
			sys.Chiplets[i].ManufacturedParts = max(1, int(float64(parts)*req.VolumeScale))
		}
	}

	sc, err := entry.pool.Get()
	if err != nil {
		return nil, err
	}
	defer entry.pool.Put(sc)
	totals, err := entry.plan.Eval(sc, &sys, s.db, dirty)
	if err != nil {
		return nil, err
	}
	return &WhatIfResponse{Key: key, Source: "param", Totals: &totals}, nil
}

// DisaggregateRequest asks for the greedy disaggregation of a system's
// block-level description.
type DisaggregateRequest struct {
	System *core.System `json:"system"`
}

// DisaggregateResponse is the search result (the explore.Plan shape,
// minus the full result system).
type DisaggregateResponse struct {
	Key string `json:"key"`
	// Groups lists each result die's absorbed blocks, in the canonical
	// sorted order.
	Groups     [][]string `json:"groups"`
	EmbodiedKg float64    `json:"embodiedKg"`
	InitialKg  float64    `json:"initialKg"`
	Steps      int        `json:"steps"`
}

// Disaggregate runs a (possibly warm) retained disaggregation search. A
// warm run revisits the search's memoized candidate tables and answers
// at a small fraction of the cold cost, bit-identically.
func (s *Server) Disaggregate(ctx context.Context, req *DisaggregateRequest) (*DisaggregateResponse, error) {
	release, err := s.admit.disagg.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if req.System == nil {
		return nil, fmt.Errorf("serve: disaggregate request carries no system")
	}
	key, err := s.keyer.DisaggregateKey(req.System)
	if err != nil {
		return nil, err
	}
	ds, err := s.disagg.GetOrBuild(key, func() (*explore.DisaggregateSearch, error) {
		return explore.CompileDisaggregate(req.System, s.db)
	})
	if err != nil {
		return nil, err
	}
	plan, err := ds.Run(ctx, s.engineOpts()...)
	if err != nil {
		return nil, err
	}
	return &DisaggregateResponse{
		Key:        key,
		Groups:     plan.Groups,
		EmbodiedKg: plan.EmbodiedKg,
		InitialKg:  plan.InitialKg,
		Steps:      plan.Steps,
	}, nil
}

// StreamFront runs a sweep in streaming front mode: snapshots of the
// monotonically tightening Pareto front go to emit as lease blocks
// land, and the exact final front is returned. The run fans blocks
// across StreamReplicas in-process shard replicas that all share the
// server's warm plan — the serving embodiment of the lease protocol's
// incremental front consumption.
func (s *Server) StreamFront(ctx context.Context, req *SweepRequest, emit func(shard.FrontSnapshot) error) (*SweepResponse, error) {
	release, err := s.admit.stream.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if req.System == nil {
		return nil, fmt.Errorf("serve: stream request carries no system")
	}
	if len(req.Objectives) == 0 {
		return nil, fmt.Errorf("serve: a streamed front needs objectives")
	}
	objs, err := ParseObjectives(req.Objectives)
	if err != nil {
		return nil, err
	}
	key, plan, err := s.sweepPlan(req.System, req.Nodes, req.costParams())
	if err != nil {
		return nil, err
	}
	src := &planSource{key: key, plan: plan}
	transports := make([]shard.Transport, s.cfg.StreamReplicas)
	for i := range transports {
		transports[i] = shard.NewReplica(src)
	}
	co := shard.NewCoordinator(plan, key, transports, shard.Config{BlockSize: s.cfg.StreamBlockSize})
	front, total, err := co.ParetoFrontStream(ctx, objs, emit)
	if err != nil {
		return nil, err
	}
	return &SweepResponse{Key: key, Total: total, Front: true, Points: front}, nil
}

// planSource is the server-side shard.PlanSource: it resolves exactly
// the one warm plan a stream run was built around, so every loopback
// replica shares the server's compiled plan (and its pooled scratches)
// instead of compiling its own.
type planSource struct {
	key  string
	plan *explore.CompiledPlan
}

func (p *planSource) Plan(key string) (*explore.CompiledPlan, error) {
	if key != p.key {
		return nil, fmt.Errorf("%w: %s", shard.ErrPlanUnknown, key)
	}
	return p.plan, nil
}

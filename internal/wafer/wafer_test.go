package wafer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default wafer invalid: %v", err)
	}
	for _, d := range []float64{10, 500, 0, -5} {
		if err := (Wafer{DiameterMM: d}).Validate(); err == nil {
			t.Errorf("Validate should reject diameter %g", d)
		}
	}
	for _, d := range []float64{25, 300, 450} {
		if err := (Wafer{DiameterMM: d}).Validate(); err != nil {
			t.Errorf("Validate should accept diameter %g: %v", d, err)
		}
	}
}

func TestAreaMM2(t *testing.T) {
	w := Wafer{DiameterMM: 300}
	want := math.Pi * 150 * 150
	if got := w.AreaMM2(); math.Abs(got-want) > 1e-9 {
		t.Errorf("AreaMM2 = %g, want %g", got, want)
	}
}

func TestDiesPerWaferKnownValue(t *testing.T) {
	// 450mm wafer, 100mm^2 die: side=10, usable radius = 225 - 10/sqrt(2)
	// = 217.9289; DPW = floor(pi*r^2/100) = floor(1491.85...) = 1491.
	w := Default()
	r := 225 - 10/math.Sqrt2
	want := int(math.Floor(math.Pi * r * r / 100))
	if got := w.DiesPerWafer(100); got != want {
		t.Errorf("DiesPerWafer(100) = %d, want %d", got, want)
	}
}

func TestDiesPerWaferTooLarge(t *testing.T) {
	w := Wafer{DiameterMM: 25}
	// A die with side length > diameter*sqrt(2)/2 cannot fit.
	if got := w.DiesPerWafer(2500); got != 0 {
		t.Errorf("oversized die should give DPW 0, got %d", got)
	}
	if _, err := w.WastedAreaPerDie(2500); err == nil {
		t.Error("WastedAreaPerDie should error when die does not fit")
	}
}

func TestDiesPerWaferPanicsOnNonPositiveArea(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero area should panic")
		}
	}()
	Default().DiesPerWafer(0)
}

// Property: DPW is monotone non-increasing in die area.
func TestDPWMonotone(t *testing.T) {
	w := Default()
	f := func(a uint16) bool {
		area := float64(a%1000) + 1
		return w.DiesPerWafer(area+10) <= w.DiesPerWafer(area)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: wasted area per die is non-negative, and total accounting is
// exact: DPW*A_die + DPW*A_wasted == A_wafer.
func TestWastedAreaAccounting(t *testing.T) {
	w := Default()
	f := func(a uint16) bool {
		area := float64(a%800) + 1
		wasted, err := w.WastedAreaPerDie(area)
		if err != nil || wasted < 0 {
			return false
		}
		dpw := float64(w.DiesPerWafer(area))
		total := dpw*area + dpw*wasted
		return math.Abs(total-w.AreaMM2()) < 1e-6*w.AreaMM2()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Smaller dies waste less periphery per die: the Fig. 3 effect. Checked on
// a coarse grid rather than per-mm^2 because floor() makes the function
// locally non-monotone.
func TestSmallerDiesWasteLess(t *testing.T) {
	w := Default()
	areas := []float64{25, 100, 225, 400, 625}
	prev := -1.0
	for _, a := range areas {
		wasted, err := w.WastedAreaPerDie(a)
		if err != nil {
			t.Fatalf("WastedAreaPerDie(%g): %v", a, err)
		}
		if wasted < prev {
			t.Errorf("wasted area per die at %g mm^2 (%g) should exceed smaller-die value (%g)", a, wasted, prev)
		}
		prev = wasted
	}
}

func TestUtilizationFraction(t *testing.T) {
	w := Default()
	small := w.UtilizationFraction(25)
	big := w.UtilizationFraction(625)
	if !(small > big) {
		t.Errorf("smaller dies should utilize the wafer better: %g vs %g", small, big)
	}
	f := func(a uint16) bool {
		u := w.UtilizationFraction(float64(a%1000) + 1)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

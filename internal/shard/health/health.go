// Package health is the per-replica health fabric of the shard layer:
// a small state machine driven by a circuit breaker plus an EWMA
// latency tracker, shared by every lease goroutine that drives the
// same replica.
//
// Each replica moves through
//
//	Healthy ──failure──▶ Degraded ──breaker trips──▶ Quarantined
//	   ▲                    │                            │ probe due
//	   │                    ▼                            ▼
//	   └──probe succeeds── HalfOpen ◀────one lease────────┘
//
// The breaker trips on either of two signals: TripAfter consecutive
// failures, or a windowed error rate of at least TripRate over the
// last Window outcomes (once MinSamples outcomes exist — a single
// early failure must not condemn a replica). A quarantined replica
// receives no leases until its probe interval lapses; the first caller
// of Allow then claims the half-open slot and carries exactly one
// probe lease. A successful probe closes the breaker (Healthy, full
// reset); a failed one re-quarantines with a doubled interval, and
// MaxProbes consecutive probe failures mark the tracker exhausted so
// the caller can retire the replica for the run instead of probing a
// corpse forever.
//
// The tracker also maintains an EWMA of successful lease latencies —
// the adaptive baseline the coordinator's hedging compares outstanding
// leases against. All methods take explicit timestamps so callers (and
// tests) control the clock; the zero Config is usable.
package health

import (
	"fmt"
	"sync"
	"time"
)

// State is a replica's current health classification.
type State uint8

const (
	// Healthy replicas take leases freely.
	Healthy State = iota
	// Degraded replicas have recent failures below the trip threshold;
	// they still take leases, but one more bad streak quarantines them.
	Degraded
	// Quarantined replicas take no leases until their probe interval
	// lapses.
	Quarantined
	// HalfOpen marks a quarantined replica with its single probe lease
	// in flight: success closes the breaker, failure re-quarantines.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("health.State(%d)", uint8(s))
}

// Config tunes a Tracker. The zero value selects every default.
type Config struct {
	// TripAfter is the consecutive-failure count that opens the breaker
	// (default 4).
	TripAfter int
	// Window is the ring of recent lease outcomes the error-rate signal
	// looks at (default 16).
	Window int
	// MinSamples is the least outcomes the window must hold before the
	// error-rate signal may trip (default 8).
	MinSamples int
	// TripRate is the windowed error rate in [0,1] that opens the
	// breaker (default 0.5).
	TripRate float64
	// ProbeAfter is the first quarantine interval before a half-open
	// probe (default 250ms); it doubles per consecutive failed probe up
	// to ProbeAfterMax (default 8×ProbeAfter).
	ProbeAfter    time.Duration
	ProbeAfterMax time.Duration
	// MaxProbes is the consecutive failed half-open probes after which
	// the tracker reports Exhausted (default 2).
	MaxProbes int
	// Alpha is the EWMA smoothing factor for lease latency in (0,1]
	// (default 0.3).
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.TripAfter <= 0 {
		c.TripAfter = 4
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.TripRate <= 0 || c.TripRate > 1 {
		c.TripRate = 0.5
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 250 * time.Millisecond
	}
	if c.ProbeAfterMax <= 0 {
		c.ProbeAfterMax = 8 * c.ProbeAfter
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// Counters is a snapshot of a tracker's transition counters.
type Counters struct {
	// Successes / Failures count recorded lease outcomes.
	Successes, Failures uint64
	// Trips counts breaker openings (any state → Quarantined).
	Trips uint64
	// Probes counts half-open entries (Quarantined → HalfOpen).
	Probes uint64
	// Closes counts probe successes (HalfOpen → Healthy).
	Closes uint64
}

// Add folds another snapshot into c (fabric-level aggregation).
func (c *Counters) Add(o Counters) {
	c.Successes += o.Successes
	c.Failures += o.Failures
	c.Trips += o.Trips
	c.Probes += o.Probes
	c.Closes += o.Closes
}

// Tracker is one replica's health state. Safe for concurrent use by
// every lease goroutine driving the replica (pipelined transports
// share one tracker).
type Tracker struct {
	cfg Config

	mu           sync.Mutex
	state        State
	consecFails  int
	failedProbes int
	probeDue     time.Time // Quarantined: earliest half-open entry
	retired      bool

	// windowed outcomes: ring of booleans (true = failure)
	ring  []bool
	ringN int // filled entries
	ringI int // next write index

	ewma lat

	counters Counters
}

// lat is an EWMA over latency samples in nanoseconds.
type lat struct {
	v       float64
	samples uint64
}

func (l *lat) observe(alpha float64, d time.Duration) {
	if d < 0 {
		d = 0
	}
	if l.samples == 0 {
		l.v = float64(d)
	} else {
		l.v = alpha*float64(d) + (1-alpha)*l.v
	}
	l.samples++
}

// New returns a tracker over cfg (zero value = defaults), starting
// Healthy.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State reports the current classification.
func (t *Tracker) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// EWMA reports the smoothed successful-lease latency (0 until the
// first success).
func (t *Tracker) EWMA() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ewma.samples == 0 {
		return 0
	}
	return time.Duration(t.ewma.v)
}

// ConsecutiveFailures reports the current failure streak — the
// caller's backoff exponent.
func (t *Tracker) ConsecutiveFailures() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.consecFails
}

// Counters snapshots the transition counters.
func (t *Tracker) Counters() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters
}

// Exhausted reports whether MaxProbes consecutive half-open probes
// failed — the signal to retire the replica rather than keep probing.
func (t *Tracker) Exhausted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failedProbes >= t.cfg.MaxProbes
}

// Retire marks the tracker retired and reports whether this call was
// the first to do so — the once-guard that keeps several lease
// goroutines sharing one tracker from multiply counting the loss.
func (t *Tracker) Retire() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.retired {
		return false
	}
	t.retired = true
	return true
}

// AbandonProbe returns a claimed half-open slot unused: the caller got
// no lease to probe with (run over, transport removed). The tracker
// re-quarantines with the probe immediately due again, and the claim
// is uncounted — an abandoned probe is not an attempt.
func (t *Tracker) AbandonProbe(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != HalfOpen {
		return
	}
	t.state = Quarantined
	t.probeDue = now
	if t.counters.Probes > 0 {
		t.counters.Probes--
	}
}

// Reset clears the per-run retirement budget — the failed-probe count
// and the retire guard — while keeping the breaker state, window and
// EWMA. A replica retired in one run is probed afresh by the next
// instead of staying dead forever.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failedProbes = 0
	t.retired = false
	if t.state == HalfOpen {
		// A probe claimed by a previous run's drive goroutine resolves
		// nowhere now; make the slot claimable again.
		t.state = Quarantined
	}
}

// Allow reports whether the replica may take a lease now. Healthy and
// Degraded replicas always may; a Quarantined replica may only once
// its probe interval lapsed, and the first allowed caller claims the
// single half-open probe slot (concurrent callers are held off until
// the probe resolves). When refused, wait is the suggested sleep
// before asking again.
func (t *Tracker) Allow(now time.Time) (ok bool, wait time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case Healthy, Degraded:
		return true, 0
	case HalfOpen:
		// A probe is already in flight; wait for it to resolve.
		return false, t.cfg.ProbeAfter
	default: // Quarantined
		if now.Before(t.probeDue) {
			return false, t.probeDue.Sub(now)
		}
		t.state = HalfOpen
		t.counters.Probes++
		return true, 0
	}
}

// Success records a completed lease and its latency: the EWMA absorbs
// the sample, the failure streak resets, a half-open probe closes the
// breaker, and a degraded replica recovers once the windowed error
// rate falls back under the trip threshold.
func (t *Tracker) Success(now time.Time, latency time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters.Successes++
	t.ewma.observe(t.cfg.Alpha, latency)
	t.push(false)
	t.consecFails = 0
	switch t.state {
	case HalfOpen:
		t.state = Healthy
		t.counters.Closes++
		t.failedProbes = 0
		t.resetWindow()
	case Degraded:
		if t.errorRate() < t.cfg.TripRate {
			t.state = Healthy
		}
	case Quarantined:
		// A lease granted before the trip landed after it; credit the
		// outcome but let the quarantine stand — probes decide re-entry.
	}
}

// Failure records a failed (or expired) lease outcome and reports
// whether this failure tripped the breaker (a state transition into
// Quarantined). A failed half-open probe re-quarantines with a doubled
// interval.
func (t *Tracker) Failure(now time.Time) (tripped bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters.Failures++
	t.push(true)
	t.consecFails++
	switch t.state {
	case HalfOpen:
		t.failedProbes++
		t.quarantineLocked(now)
		return true
	case Quarantined:
		return false
	}
	if t.consecFails >= t.cfg.TripAfter ||
		(t.ringN >= t.cfg.MinSamples && t.errorRate() >= t.cfg.TripRate) {
		t.quarantineLocked(now)
		return true
	}
	t.state = Degraded
	return false
}

// quarantineLocked opens the breaker: the probe interval doubles per
// consecutive failed probe, capped at ProbeAfterMax.
func (t *Tracker) quarantineLocked(now time.Time) {
	t.state = Quarantined
	t.counters.Trips++
	iv := t.cfg.ProbeAfter
	for i := 0; i < t.failedProbes && iv < t.cfg.ProbeAfterMax; i++ {
		iv *= 2
	}
	if iv > t.cfg.ProbeAfterMax {
		iv = t.cfg.ProbeAfterMax
	}
	t.probeDue = now.Add(iv)
}

func (t *Tracker) push(failure bool) {
	t.ring[t.ringI] = failure
	t.ringI = (t.ringI + 1) % len(t.ring)
	if t.ringN < len(t.ring) {
		t.ringN++
	}
}

func (t *Tracker) resetWindow() {
	t.ringN, t.ringI = 0, 0
}

// errorRate is the failure fraction of the filled window (0 when
// empty). Caller holds mu.
func (t *Tracker) errorRate() float64 {
	if t.ringN == 0 {
		return 0
	}
	fails := 0
	for i := 0; i < t.ringN; i++ {
		if t.ring[i] {
			fails++
		}
	}
	return float64(fails) / float64(t.ringN)
}

// Ewma is a standalone concurrency-safe EWMA over durations — the
// coordinator's cross-replica lease-latency baseline for hedging.
type Ewma struct {
	mu    sync.Mutex
	alpha float64
	l     lat
}

// NewEwma returns an EWMA with the given smoothing factor (out-of-range
// values select the default 0.3).
func NewEwma(alpha float64) *Ewma {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Ewma{alpha: alpha}
}

// Observe folds one latency sample in.
func (e *Ewma) Observe(d time.Duration) {
	e.mu.Lock()
	e.l.observe(e.alpha, d)
	e.mu.Unlock()
}

// Value reports the current smoothed latency (0 before any sample).
func (e *Ewma) Value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.l.samples == 0 {
		return 0
	}
	return time.Duration(e.l.v)
}

// Samples reports how many observations the EWMA absorbed.
func (e *Ewma) Samples() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.l.samples
}

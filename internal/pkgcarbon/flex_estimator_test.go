package pkgcarbon

import (
	"math/rand"
	"testing"

	"ecochip/internal/tech"
)

// The scratch-backed Estimator must reproduce Estimate bit for bit for
// flexible (shape-curve) floorplans too — the retained FlexTree path
// against the from-scratch PlanFlexible the package-level call runs.
func TestEstimatorFlexibleMatchesEstimate(t *testing.T) {
	db := tech.Default()
	rng := rand.New(rand.NewSource(13))
	for _, arch := range []Architecture{RDLFanout, SiliconBridge, PassiveInterposer, ActiveInterposer} {
		p := DefaultParams(arch)
		p.FlexibleFloorplan = true
		est, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			chiplets := randChiplets(rng, db)
			want, wantErr := Estimate(chiplets, p)
			got, gotErr := est.Estimate(chiplets)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v trial %d: error mismatch: %v vs %v", arch, trial, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !resultsBitIdentical(want, got) {
				t.Fatalf("%v trial %d: results differ\nwant %+v\ngot  %+v", arch, trial, want, got)
			}
		}
	}
}

// EstimateDelta must serve flexible floorplans through the retained
// FlexTree's dirty-path recompute — bit-identical to a full Estimate
// across long single-changed-chiplet walks, and actually incremental
// (the tree must report fast-path plans, not rebuilds).
func TestEstimateDeltaFlexibleMatchesEstimate(t *testing.T) {
	db := tech.Default()
	sizes := db.Sizes()
	rng := rand.New(rand.NewSource(17))
	for _, arch := range []Architecture{RDLFanout, SiliconBridge, PassiveInterposer} {
		p := DefaultParams(arch)
		p.FlexibleFloorplan = true
		est, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		chiplets := randChiplets(rng, db)
		if _, err := est.EstimateDelta(chiplets, 0); err != nil {
			t.Fatalf("%v: first delta: %v", arch, err)
		}
		for step := 0; step < 120; step++ {
			i := rng.Intn(len(chiplets))
			if rng.Intn(3) > 0 {
				chiplets[i].AreaMM2 = 5 + rng.Float64()*300
			}
			if rng.Intn(2) == 0 {
				chiplets[i].Node = db.MustGet(sizes[rng.Intn(len(sizes))])
			}
			want, err := Estimate(chiplets, p)
			if err != nil {
				t.Fatalf("%v step %d: %v", arch, step, err)
			}
			got, err := est.EstimateDelta(chiplets, i)
			if err != nil {
				t.Fatalf("%v step %d: delta: %v", arch, step, err)
			}
			if !resultsBitIdentical(want, got) {
				t.Fatalf("%v step %d: delta diverges\nwant %+v\ngot  %+v", arch, step, want, got)
			}
		}
		if s := est.FloorplanStats(); len(chiplets) > 1 && s.FastPath == 0 {
			t.Errorf("%v: flexible delta walk never hit the FlexTree fast path: %+v", arch, s)
		}
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// bigTestSweep compiles a sweep with at least minCombos points (random
// systems over the full candidate node set — up to 7^chiplets combos),
// so lease-count-sensitive tests (breaker cycles, hedge races) get
// enough grants to be deterministic.
func bigTestSweep(t *testing.T, rng *rand.Rand, minCombos int) (*explore.CompiledPlan, *Catalog, string) {
	t.Helper()
	db := tech.Default()
	cp := cost.DefaultParams()
	for {
		sys := testcases.Random(rng, db)
		cat := NewCatalog()
		key, err := cat.RegisterSweep(sys, db, testcases.MaskNodes, cp)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := cat.Plan(key)
		if errors.Is(err, explore.ErrNoFastPath) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if plan.Combos() >= minCombos {
			return plan, cat, key
		}
	}
}

// A straggling replica must be hedged, not waited out: the healthy
// replicas warm the latency EWMA, the straggler's lease ages past the
// adaptive threshold, its blocks are speculatively re-leased, and the
// fast recomputation wins — all well before the lease deadline, with
// the output bit-identical.
func TestChaosStragglerHedges(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	plan, cat, key := bigTestSweep(t, rng, 60)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.BlockSize = 4
	cfg.LeaseBlocks = 1
	cfg.LeaseTimeout = 30 * time.Second // expiry must never be the rescue path
	cfg.HedgeMin = 5 * time.Millisecond
	transports := []Transport{
		NewReplica(cat),
		NewReplica(cat),
		Fault(NewReplica(cat), FaultSpec{Seed: 1, Slow: 10 * time.Second}),
	}
	co := NewCoordinator(plan, key, transports, cfg)
	start := time.Now()
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "hedged sweep")
	st := co.Stats()
	if st.HedgesFired == 0 || st.HedgesWon == 0 {
		t.Errorf("stats = %+v, want fired and won hedges", st)
	}
	if st.HedgesCancelled == 0 {
		t.Errorf("stats = %+v, want the losing straggler lease cancelled early", st)
	}
	if st.LeasesExpired != 0 {
		t.Errorf("stats = %+v, want rescue via hedging, not expiry", st)
	}
	// The straggler stalls 10s per block; finishing fast proves the
	// hedge (not the straggler, not expiry) completed its span.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("sweep took %v with hedging armed", elapsed)
	}
}

// A flapping replica must drive its breaker through the full cycle:
// consecutive failures trip it, the first probe lands in the outage and
// re-quarantines, a later probe lands in the up phase and closes it —
// deterministically, because after the trip the replica's only Execute
// calls are probes.
func TestChaosFlapBreakerCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	plan, cat, key := bigTestSweep(t, rng, 120)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.BlockSize = 2
	cfg.LeaseBlocks = 1
	cfg.DisableHedging = true
	cfg.Health.TripAfter = 3
	cfg.Health.MinSamples = 1000 // isolate the consecutive-failure signal
	cfg.Health.ProbeAfter = 2 * time.Millisecond
	cfg.Health.ProbeAfterMax = 4 * time.Millisecond
	cfg.Health.MaxProbes = 100 // probe through the outage, never retire
	flappy := Fault(NewReplica(cat), FaultSpec{Seed: 2, FlapEvery: 4})
	steady := Fault(NewReplica(cat), FaultSpec{Seed: 3, Delay: 3 * time.Millisecond})
	co := NewCoordinator(plan, key, []Transport{flappy, steady}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "flap sweep")
	st := co.Stats()
	if st.BreakerTrips == 0 || st.BreakerProbes == 0 || st.BreakerCloses == 0 {
		t.Errorf("stats = %+v, want a full open -> half-open -> close breaker cycle", st)
	}
	if st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want no fallback (the flapping replica recovers)", st)
	}
}

// countTransport counts Execute calls.
type countTransport struct {
	inner Transport
	n     atomic.Int64
}

func (c *countTransport) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	c.n.Add(1)
	return c.inner.Execute(ctx, lease, emit)
}

// RemoveTransport before a run excludes the replica entirely; the
// membership calls report presence truthfully.
func TestRemoveTransportExcludesReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	plan, cat, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	counted := &countTransport{inner: NewReplica(cat)}
	co := NewCoordinator(plan, key, []Transport{NewReplica(cat), counted}, fastCfg())
	if !co.RemoveTransport(counted) {
		t.Fatal("RemoveTransport(present) = false")
	}
	if co.RemoveTransport(counted) {
		t.Fatal("RemoveTransport(absent) = true")
	}
	if n := len(co.Transports()); n != 1 {
		t.Fatalf("%d transports after removal, want 1", n)
	}
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "post-removal sweep")
	if n := counted.n.Load(); n != 0 {
		t.Errorf("removed transport executed %d leases, want 0", n)
	}
}

// AddTransport mid-run joins the live run: a sweep stuck behind a
// pathologically slow replica (fallback disabled, expiry out of reach)
// completes promptly once a healthy replica is added, because the
// pending blocks drain through the newcomer and the straggler's own
// span is hedged away from it.
func TestAddTransportJoinsLiveRun(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	plan, cat, key := bigTestSweep(t, rng, 40)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.BlockSize = 4
	cfg.LeaseBlocks = 1
	cfg.LeaseTimeout = 30 * time.Second
	cfg.HedgeMin = 5 * time.Millisecond
	cfg.DisableFallback = true
	stuck := Fault(NewReplica(cat), FaultSpec{Seed: 4, Slow: 10 * time.Second})
	co := NewCoordinator(plan, key, []Transport{stuck}, cfg)

	done := make(chan struct{})
	var got []explore.Point
	var sweepErr error
	go func() {
		defer close(done)
		got, sweepErr = co.Sweep(context.Background())
	}()
	time.Sleep(30 * time.Millisecond)
	co.AddTransport(NewReplica(cat))
	select {
	case <-done:
	case <-time.After(8 * time.Second):
		t.Fatal("sweep did not complete after AddTransport (still stuck behind the straggler)")
	}
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	assertSamePoints(t, want, got, "mid-run-join sweep")
	if n := len(co.Transports()); n != 2 {
		t.Errorf("%d transports after AddTransport, want 2", n)
	}
}

// drainingTransport reports a graceful drain.
type drainingTransport struct {
	inner    Transport
	draining atomic.Bool
	execs    atomic.Int64
}

func (d *drainingTransport) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	d.execs.Add(1)
	return d.inner.Execute(ctx, lease, emit)
}

func (d *drainingTransport) Draining() bool { return d.draining.Load() }

// A draining replica gets no leases: the coordinator skips it (counted)
// and the healthy replica carries the sweep.
func TestDrainingTransportSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	plan, cat, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	drainer := &drainingTransport{inner: NewReplica(cat)}
	drainer.draining.Store(true)
	co := NewCoordinator(plan, key, []Transport{NewReplica(cat), drainer}, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "draining sweep")
	st := co.Stats()
	if st.DrainSkips == 0 {
		t.Errorf("stats = %+v, want drain skips", st)
	}
	if n := drainer.execs.Load(); n != 0 {
		t.Errorf("draining replica executed %d leases, want 0", n)
	}
	if st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want the healthy replica to finish without fallback", st)
	}
}

// flakyThenHealthy fails its first failN Execute calls with a transient
// error, then behaves.
type flakyThenHealthy struct {
	inner Transport
	failN int64
	execs atomic.Int64
}

func (f *flakyThenHealthy) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	if n := f.execs.Add(1); n <= f.failN {
		return fmt.Errorf("flaky: transient failure %d", n)
	}
	return f.inner.Execute(ctx, lease, emit)
}

// A replica retired in one run (probe budget spent) must rejoin the
// next run through a fresh probe — quarantine is per run, not forever.
func TestQuarantinedReplicaRejoinsNextRun(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	plan, cat, key := bigTestSweep(t, rng, 60)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.BlockSize = 4
	cfg.LeaseBlocks = 1
	cfg.Health.TripAfter = 2
	cfg.Health.ProbeAfter = time.Millisecond
	cfg.Health.ProbeAfterMax = 2 * time.Millisecond
	cfg.Health.MaxProbes = 1
	flaky := &flakyThenHealthy{inner: NewReplica(cat), failN: 50}
	// The steady replica is slowed so run 1 outlasts the flaky one's
	// trip -> failed probe -> exhaust -> retire arc.
	steady := Fault(NewReplica(cat), FaultSpec{Seed: 5, Delay: 2 * time.Millisecond})
	co := NewCoordinator(plan, key, []Transport{flaky, steady}, cfg)
	if _, err := co.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := co.Stats()
	if st.ReplicasLost != 1 {
		t.Fatalf("run 1 stats = %+v, want the flaky replica retired", st)
	}
	execsAfterRun1 := flaky.execs.Load()

	// Run 2: the replica has healed (failN exhausted by run 1's budget is
	// not guaranteed, so force it) and must be probed back in.
	flaky.execs.Store(flaky.failN) // next Execute succeeds
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "rejoin sweep")
	if n := flaky.execs.Load(); n <= execsAfterRun1 {
		t.Errorf("healed replica executed no leases in run 2 (execs %d -> %d)", execsAfterRun1, n)
	}
	if c := co.Stats(); c.BreakerCloses == 0 {
		t.Errorf("stats = %+v, want the healed replica's breaker closed by a probe", c)
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecochip/internal/explore"
)

// Config tunes the coordinator's lease protocol. The zero value is
// usable: every field has a production default.
type Config struct {
	// BlockSize is the points-per-block quantum (default 512). Smaller
	// blocks mean finer re-lease granularity after failures at the cost
	// of more protocol traffic and more Gray-walk block inits.
	BlockSize int
	// LeaseBlocks caps the blocks per lease (default 4).
	LeaseBlocks int
	// LeaseTimeout is the watchdog deadline per lease (default 2s):
	// past it the lease's incomplete blocks are re-leased to surviving
	// replicas and its context is cancelled. Late results from the
	// original replica deduplicate harmlessly.
	LeaseTimeout time.Duration
	// RetryBackoff is the base delay before retrying a replica after a
	// transient failure (default 5ms); doubled per consecutive failure
	// up to BackoffMax (default 250ms), with uniform jitter over the
	// top half of the interval to decorrelate replica retry storms.
	RetryBackoff time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// MaxRetries is the consecutive-failure budget per replica
	// (default 3); past it the replica is retired for the run.
	MaxRetries int
	// Seed seeds the backoff jitter (deterministic per replica index).
	Seed int64
	// DisableFallback turns the total-replica-loss degradation into a
	// typed *ExhaustedError instead of a local walk — for deployments
	// where the coordinator must not absorb compute.
	DisableFallback bool
	// Logf, when set, receives protocol events worth operator eyes
	// (currently: fallback activation). Default: silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	if c.LeaseBlocks <= 0 {
		c.LeaseBlocks = 4
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	return c
}

// Stats is a snapshot of the coordinator's protocol counters,
// cumulative across runs. Its String is the summary ecodse prints
// under -progress.
type Stats struct {
	// LeasesGranted counts leases handed to replicas; LeasesExpired the
	// subset whose watchdog fired before the span completed.
	LeasesGranted, LeasesExpired uint64
	// BlocksRequeued counts block re-leases: blocks returned to the
	// pending queue by expiry, replica failure or lost results.
	BlocksRequeued uint64
	// BlocksCompleted counts first-delivery block completions;
	// BlocksDeduped the discarded double-completions (first write wins);
	// BlocksLocal the blocks absorbed by the coordinator's fallback.
	BlocksCompleted, BlocksDeduped, BlocksLocal uint64
	// ReplicaFailures counts transient Execute errors; ReplicasLost the
	// replicas retired (crash or retry budget exhausted).
	ReplicaFailures, ReplicasLost uint64
	// Fallbacks counts local-walk degradations (total replica loss).
	Fallbacks uint64
	// Wire aggregates the wire-level counters of the coordinator's
	// counted transports (zero for pure loopback runs).
	Wire TransportCounters
}

func (s Stats) String() string {
	out := fmt.Sprintf("shard: %d leases granted (%d expired), %d blocks re-leased, %d completed (%d deduped, %d local), %d replica failures (%d replicas lost), %d fallbacks",
		s.LeasesGranted, s.LeasesExpired, s.BlocksRequeued, s.BlocksCompleted, s.BlocksDeduped, s.BlocksLocal,
		s.ReplicaFailures, s.ReplicasLost, s.Fallbacks)
	if !s.Wire.IsZero() {
		out += "\n" + s.Wire.String()
	}
	return out
}

// Coordinator drives one compiled plan across a set of replica
// transports under the lease protocol. It is safe for sequential
// reuse (Sweep / ParetoFront any number of times); stats accumulate.
type Coordinator struct {
	plan       *explore.CompiledPlan
	key        string
	transports []Transport
	cfg        Config

	leasesGranted, leasesExpired, blocksRequeued  atomic.Uint64
	blocksCompleted, blocksDeduped, blocksLocal   atomic.Uint64
	replicaFailures, replicasLost, fallbacksTotal atomic.Uint64
}

// NewCoordinator builds a coordinator for the plan (compiled by the
// caller — the coordinator needs it for geometry, result assembly and
// the degradation path) identified by key (explore.PlanKey of the same
// inputs) over the given replica transports. An empty transport list
// is legal: every run degrades to the local walk.
func NewCoordinator(plan *explore.CompiledPlan, key string, transports []Transport, cfg Config) *Coordinator {
	return &Coordinator{
		plan:       plan,
		key:        key,
		transports: append([]Transport(nil), transports...),
		cfg:        cfg.withDefaults(),
	}
}

// Stats snapshots the protocol counters, including the summed
// wire-level counters of the distinct counted transports (one entry
// per transport value: passing the same network client several times
// to pipeline leases over its socket does not double-count it).
func (c *Coordinator) Stats() Stats {
	var wire TransportCounters
	seen := make(map[Transport]bool, len(c.transports))
	for _, t := range c.transports {
		ct, ok := t.(CountedTransport)
		if !ok || seen[t] {
			continue
		}
		seen[t] = true
		wire.add(ct.TransportCounters())
	}
	return Stats{
		Wire:            wire,
		LeasesGranted:   c.leasesGranted.Load(),
		LeasesExpired:   c.leasesExpired.Load(),
		BlocksRequeued:  c.blocksRequeued.Load(),
		BlocksCompleted: c.blocksCompleted.Load(),
		BlocksDeduped:   c.blocksDeduped.Load(),
		BlocksLocal:     c.blocksLocal.Load(),
		ReplicaFailures: c.replicaFailures.Load(),
		ReplicasLost:    c.replicasLost.Load(),
		Fallbacks:       c.fallbacksTotal.Load(),
	}
}

// Sweep executes the full plan across the replicas and returns every
// point in exact mixed-radix order — bit-identical to plan.RunCtx on
// one process, whatever the failure pattern (or a typed error).
func (c *Coordinator) Sweep(ctx context.Context) ([]explore.Point, error) {
	results := make([]explore.Point, c.plan.Combos())
	sink := func(res BlockResult) {
		for i, slot := range res.Slots {
			results[slot] = res.Points[i]
		}
	}
	if err := c.run(ctx, ModePoints, nil, sink); err != nil {
		return nil, err
	}
	return results, nil
}

// ParetoFront executes the plan in front mode: replicas ship only each
// block's skyline survivors, the coordinator merges them at the
// barrier (slot order restored, one final ParetoFront pass) exactly as
// plan.ParetoFrontCtx merges its per-worker fronts. Returns the front
// and the total number of points the sweep covered.
func (c *Coordinator) ParetoFront(ctx context.Context, objectives []Objective) ([]explore.Point, int, error) {
	if len(objectives) == 0 {
		return nil, 0, fmt.Errorf("shard: ParetoFront needs at least one objective")
	}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		return nil, 0, err
	}
	type slotPoint struct {
		slot int
		pt   explore.Point
	}
	var survivors []slotPoint
	sink := func(res BlockResult) {
		for i, slot := range res.Slots {
			survivors = append(survivors, slotPoint{slot, res.Points[i]})
		}
	}
	if err := c.run(ctx, ModeFront, objectives, sink); err != nil {
		return nil, 0, err
	}
	// Restore global slot order so the final pass sees candidates
	// exactly as the single-process merge would; ties and duplicates
	// then resolve identically.
	sort.Slice(survivors, func(a, b int) bool { return survivors[a].slot < survivors[b].slot })
	points := make([]explore.Point, len(survivors))
	for i, s := range survivors {
		points[i] = s.pt
	}
	return explore.ParetoFront(points, ms...), c.plan.Combos(), nil
}

// FrontSnapshot is one incremental view of a streaming front run: the
// Pareto front over every block delivered so far, with the run's block
// progress. Front entries are owned by the receiver (points are copied
// out of the fold).
type FrontSnapshot struct {
	// Front is the skyline of all points delivered so far, in the same
	// canonical order ParetoFront returns.
	Front []explore.Point
	// BlocksDone / TotalBlocks is the run's progress; the last snapshot
	// always has BlocksDone == TotalBlocks.
	BlocksDone, TotalBlocks int
}

// ParetoFrontStream is ParetoFront without the barrier: as blocks land
// (in whatever order leases complete), the coordinator folds them into
// a running skyline and streams snapshots to emit — a serving client
// watches the front tighten monotonically instead of waiting for the
// whole sweep. Snapshots coalesce under load (emit is never called
// concurrently, and a slow consumer sees fewer, fresher snapshots, not
// a backlog); every snapshot is the exact Pareto front of the blocks
// it covers, so each front is a superset-refinement of the last: a
// point leaves only when a newly landed point dominates it. The final
// snapshot — and the returned front — carry the exact float bits of
// ParetoFront over the same plan: cross-block folding eliminates only
// points the barrier's final pass would eliminate too (dominance is
// transitive), duplicates coexist, and slot order is restored before
// the final pass. An emit error cancels the run and is returned.
func (c *Coordinator) ParetoFrontStream(ctx context.Context, objectives []Objective, emit func(FrontSnapshot) error) ([]explore.Point, int, error) {
	if len(objectives) == 0 {
		return nil, 0, fmt.Errorf("shard: ParetoFrontStream needs at least one objective")
	}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		return nil, 0, err
	}
	nb := blockCount(c.plan.Combos(), c.cfg.BlockSize)
	fold := newFrontFold(len(objectives))
	var foldMu sync.Mutex
	blocksDone := 0
	// snapshot materializes the current front; callers hold foldMu.
	snapshot := func() FrontSnapshot {
		_, pts := fold.sorted()
		return FrontSnapshot{Front: explore.ParetoFront(pts, ms...), BlocksDone: blocksDone, TotalBlocks: nb}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	// The sink runs under the protocol lock, so it only folds and nudges
	// the notifier; the notifier goroutine does the emitting. A buffered
	// single-slot channel coalesces bursts: a queued nudge covers every
	// block folded before the notifier gets to it.
	updates := make(chan struct{}, 1)
	var emitMu sync.Mutex
	var emitErr error
	lastDone := -1
	notifierDone := make(chan struct{})
	go func() {
		defer close(notifierDone)
		for range updates {
			foldMu.Lock()
			snap := snapshot()
			foldMu.Unlock()
			if err := emit(snap); err != nil {
				emitMu.Lock()
				emitErr = err
				emitMu.Unlock()
				cancelRun()
				return
			}
			emitMu.Lock()
			lastDone = snap.BlocksDone
			emitMu.Unlock()
		}
	}()

	sink := func(res BlockResult) {
		foldMu.Lock()
		for i, slot := range res.Slots {
			fold.add(slot, &res.Points[i], ms)
		}
		blocksDone++
		foldMu.Unlock()
		select {
		case updates <- struct{}{}:
		default:
		}
	}
	runErr := c.run(runCtx, ModeFront, objectives, sink)
	close(updates)
	<-notifierDone
	if emitErr != nil {
		return nil, 0, emitErr
	}
	if runErr != nil {
		return nil, 0, runErr
	}
	foldMu.Lock()
	snap := snapshot()
	foldMu.Unlock()
	// Guarantee the consumer saw the complete front exactly once at the
	// end (the notifier may already have delivered it).
	if lastDone != snap.BlocksDone {
		if err := emit(snap); err != nil {
			return nil, 0, err
		}
	}
	return snap.Front, c.plan.Combos(), nil
}

// leaseRec is the coordinator-side state of one outstanding lease.
type leaseRec struct {
	lease     Lease
	remaining map[int]bool // blocks not yet delivered under any lease
	expired   bool
	released  bool
	cancel    context.CancelFunc
	timer     *time.Timer
}

// runState is the mutable state of one coordinator run. All fields are
// guarded by mu; cond broadcasts wake acquire waiters on every state
// change that could unblock them (requeue, completion, cancellation).
type runState struct {
	c          *Coordinator
	mode       Mode
	objectives []Objective

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int // sorted block ids awaiting a lease
	done      []bool
	doneCount int
	nb        int
	nextSeq   uint64
	sink      func(BlockResult) // called under mu; slots pre-validated
	complete  chan struct{}
}

func (c *Coordinator) run(ctx context.Context, mode Mode, objectives []Objective, sink func(BlockResult)) error {
	combos := c.plan.Combos()
	nb := blockCount(combos, c.cfg.BlockSize)
	r := &runState{c: c, mode: mode, objectives: objectives, nb: nb, sink: sink,
		done: make([]bool, nb), pending: make([]int, nb), complete: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	for b := range r.pending {
		r.pending[b] = b
	}
	if combos == 0 {
		return ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// cond.Wait cannot watch a context; wake every waiter when the run
	// context dies so acquire loops can observe it.
	stopWake := context.AfterFunc(runCtx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stopWake()

	var wg sync.WaitGroup
	for i, t := range c.transports {
		wg.Add(1)
		go func(i int, t Transport) {
			defer wg.Done()
			r.drive(runCtx, i, t)
		}(i, t)
	}
	driversDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(driversDone)
	}()

	select {
	case <-r.complete:
		cancel() // release straggler leases promptly; their late results dedup
	case <-driversDone:
		// Every replica retired (or the run completed and they drained).
	case <-ctx.Done():
		cancel()
		return ctx.Err()
	}

	r.mu.Lock()
	finished := r.doneCount == r.nb
	remaining := append([]int(nil), r.pending...)
	r.mu.Unlock()
	if finished {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Total replica loss: degrade to the single-process walk of the
	// remaining blocks — same ComputeBlock seam, same bits — unless the
	// deployment asked for a hard error instead.
	if c.cfg.DisableFallback {
		return &ExhaustedError{Remaining: len(remaining), ReplicasLost: int(c.replicasLost.Load())}
	}
	c.fallbacksTotal.Add(1)
	if c.cfg.Logf != nil {
		c.cfg.Logf("shard: no replicas reachable, walking %d of %d blocks on the local fallback path", len(remaining), r.nb)
	}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		return err
	}
	for _, b := range remaining {
		if r.isDone(b) {
			continue // a straggler lease beat the fallback to it
		}
		res, err := computeBlock(ctx, c.plan, mode, ms, b, c.cfg.BlockSize)
		if err != nil {
			return err
		}
		r.mu.Lock()
		if !r.done[b] {
			r.sink(res)
			r.done[b] = true
			r.doneCount++
			c.blocksLocal.Add(1)
		} else {
			c.blocksDeduped.Add(1)
		}
		r.mu.Unlock()
	}
	return nil
}

func (r *runState) isDone(b int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done[b]
}

// drive is one replica's lease loop: acquire a span, execute it,
// release it, classify the outcome. Transient failures AND lease
// expiries back off exponentially with jitter before the replica may
// acquire again — expiry means the replica missed its deadline, and
// pausing it is also what lets a healthy replica win the re-leased
// blocks instead of the straggler instantly re-acquiring its own
// expired span. ErrReplicaDown or an exhausted consecutive-failure
// budget retires the replica for the run.
func (r *runState) drive(ctx context.Context, idx int, t Transport) {
	cfg := r.c.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*0x9e3779b9))
	fails := 0
	for {
		lease, rec, ok := r.acquire(ctx)
		if !ok {
			return
		}
		lctx, lcancel := context.WithCancel(ctx)
		rec.cancel = lcancel
		rec.timer = time.AfterFunc(cfg.LeaseTimeout, func() { r.expire(rec) })
		err := t.Execute(lctx, lease, func(res BlockResult) error { return r.deliver(rec, res) })
		expired := r.release(rec, lcancel)
		if ctx.Err() != nil {
			return
		}
		switch {
		case err == nil && !expired:
			fails = 0
		case errors.Is(err, ErrReplicaDown):
			r.c.replicasLost.Add(1)
			return
		default:
			// Expiry (with or without an error from the cancelled lease
			// context), or a transient Execute failure.
			if !expired {
				r.c.replicaFailures.Add(1)
			}
			fails++
			if fails > cfg.MaxRetries {
				r.c.replicasLost.Add(1)
				return
			}
			if !sleepCtx(ctx, backoff(rng, cfg, fails)) {
				return
			}
		}
	}
}

// backoff returns the delay before retry number `fails`: exponential
// from RetryBackoff, capped at BackoffMax, jittered uniformly over the
// top half of the interval.
func backoff(rng *rand.Rand, cfg Config, fails int) time.Duration {
	d := cfg.RetryBackoff
	for i := 1; i < fails && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)/2+1))
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// acquire blocks until a block span is available (or the run is over)
// and grants a lease over it. Pending blocks are kept sorted; a lease
// takes the longest contiguous run from the head, capped at
// LeaseBlocks, so re-leased stragglers coalesce back into spans.
func (r *runState) acquire(ctx context.Context) (Lease, *leaseRec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.doneCount == r.nb || ctx.Err() != nil {
			return Lease{}, nil, false
		}
		// Drop blocks a straggler completed while they sat pending.
		live := r.pending[:0]
		for _, b := range r.pending {
			if !r.done[b] {
				live = append(live, b)
			}
		}
		r.pending = live
		if len(r.pending) > 0 {
			break
		}
		r.cond.Wait()
	}
	lo := r.pending[0]
	n := 1
	for n < len(r.pending) && n < r.c.cfg.LeaseBlocks && r.pending[n] == lo+n {
		n++
	}
	r.pending = append(r.pending[:0], r.pending[n:]...)
	r.nextSeq++
	lease := Lease{
		Key:        r.c.key,
		Seq:        r.nextSeq,
		Blocks:     BlockRange{Lo: lo, Hi: lo + n},
		BlockSize:  r.c.cfg.BlockSize,
		PlanPoints: r.c.plan.Combos(),
		Mode:       r.mode,
		Objectives: append([]Objective(nil), r.objectives...),
		Deadline:   time.Now().Add(r.c.cfg.LeaseTimeout),
	}
	rec := &leaseRec{lease: lease, remaining: make(map[int]bool, n)}
	for b := lo; b < lo+n; b++ {
		rec.remaining[b] = true
	}
	r.c.leasesGranted.Add(1)
	return lease, rec, true
}

// expire fires when a lease's watchdog lapses with blocks outstanding:
// the incomplete blocks return to the pending queue for surviving
// replicas and the lease's context is cancelled. The original replica
// may still deliver them later — first write wins.
func (r *runState) expire(rec *leaseRec) {
	r.mu.Lock()
	if rec.released || rec.expired || len(rec.remaining) == 0 {
		r.mu.Unlock()
		return
	}
	rec.expired = true
	r.c.leasesExpired.Add(1)
	r.requeueLocked(rec)
	r.mu.Unlock()
	rec.cancel()
}

// release retires a lease record when its Execute returns: any blocks
// it did not deliver (failure, crash, dropped results) are re-leased
// unless expiry already did so. Reports whether the lease had expired.
func (r *runState) release(rec *leaseRec, cancel context.CancelFunc) bool {
	r.mu.Lock()
	rec.released = true
	if rec.timer != nil {
		rec.timer.Stop()
	}
	expired := rec.expired
	if !expired {
		r.requeueLocked(rec)
	}
	r.mu.Unlock()
	cancel()
	return expired
}

// requeueLocked returns rec's undelivered, still-incomplete blocks to
// the pending queue in sorted order and wakes acquire waiters.
func (r *runState) requeueLocked(rec *leaseRec) {
	n := 0
	for b := range rec.remaining {
		if !r.done[b] {
			r.pending = append(r.pending, b)
			n++
		}
	}
	if n == 0 {
		return
	}
	sort.Ints(r.pending)
	r.c.blocksRequeued.Add(uint64(n))
	r.cond.Broadcast()
}

// deliver accepts one block result from a lease: structural validation,
// first-write-wins dedup, result sink, completion detection. A
// malformed result fails the delivering Execute with ErrBadResult; the
// block stays incomplete and is re-leased.
func (r *runState) deliver(rec *leaseRec, res BlockResult) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := res.Block
	if b < 0 || b >= r.nb {
		return fmt.Errorf("%w: block %d outside the %d-block plan", ErrBadResult, b, r.nb)
	}
	if r.done[b] {
		r.c.blocksDeduped.Add(1)
		return nil
	}
	if len(res.Slots) != len(res.Points) {
		return fmt.Errorf("%w: block %d carries %d slots for %d points", ErrBadResult, b, len(res.Slots), len(res.Points))
	}
	lo, hi := blockSpan(b, r.c.cfg.BlockSize, r.c.plan.Combos())
	if r.mode == ModePoints && len(res.Points) != hi-lo {
		return fmt.Errorf("%w: block %d delivered %d of %d points", ErrBadResult, b, len(res.Points), hi-lo)
	}
	for _, slot := range res.Slots {
		if slot < 0 || slot >= r.c.plan.Combos() {
			return fmt.Errorf("%w: block %d slot %d outside the %d-point plan", ErrBadResult, b, slot, r.c.plan.Combos())
		}
	}
	r.sink(res)
	r.done[b] = true
	r.doneCount++
	delete(rec.remaining, b)
	r.c.blocksCompleted.Add(1)
	if r.doneCount == r.nb {
		close(r.complete)
		r.cond.Broadcast()
	}
	return nil
}

// Package report provides the tabular output format shared by the
// experiment runners, the ecoexp CLI and the benchmark harness: a simple
// column-aligned text renderer and a CSV writer, mirroring how the
// released ECO-CHIP artifact prints the raw data underlying each plot.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	// Title identifies the experiment (e.g. "fig7a").
	Title string
	// Note is an optional caption describing workload and parameters.
	Note string
	// Headers are the column names.
	Headers []string
	// Rows hold the data cells, each row len(Headers) long.
	Rows [][]string
}

// New creates a table with the given title and headers.
func New(title, note string, headers ...string) *Table {
	return &Table{Title: title, Note: note, Headers: headers}
}

// AddRow appends a row; it panics if the cell count mismatches the
// headers (an experiment-authoring bug, not a runtime condition).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: table %q: row has %d cells, want %d", t.Title, len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// F formats a float for table cells: fixed-point with enough precision
// for small carbon values, compact for large ones.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case v >= 10 || v <= -10:
		return strconv.FormatFloat(v, 'f', 2, 64)
	default:
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
}

// I formats an integer cell.
func I(v int) string { return strconv.Itoa(v) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := widths[i] - len(c); pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// WriteCSV writes the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Column returns the values of the named column parsed as floats; cells
// that do not parse are returned as NaN-free errors.
func (t *Table) Column(name string) ([]float64, error) {
	idx := -1
	for i, h := range t.Headers {
		if h == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("report: table %q has no column %q", t.Title, name)
	}
	out := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			return nil, fmt.Errorf("report: table %q row %d column %q: %w", t.Title, i, name, err)
		}
		out[i] = v
	}
	return out, nil
}

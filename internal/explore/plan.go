package explore

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// This file implements compiled sweep plans: the "compile once, stream
// cheap per-point deltas" evaluation of a full-factorial node sweep.
//
// Compile validates the base system once and precomputes a dense
// nc × len(nodes) table of per-(chiplet, node) invariants — area,
// manufacturing result, design carbon, NRE share, die dollar cost — so
// the hot loop replaces per-point cloning, re-validation, mutex-guarded
// memo lookups and sub-model calls with array indexing. Combinations are
// then enumerated in mixed-radix reflected Gray-code order, so
// successive points differ in exactly one chiplet: each step refreshes
// only the changed chiplet's scratch state (its packaging descriptor and
// table row), and the result is written into the point's mixed-radix
// output slot so the point order is identical to the historical
// recursive walk.
//
// One deliberate deviation from a textbook incremental evaluator: the
// per-point metric totals are NOT maintained as running sums patched by
// "new − old" deltas. Floating-point addition is not associative, so a
// patched running sum drifts from the in-order sum the uncompiled path
// computes, and the contract here is bit-identical output (guarded by
// the randomized equivalence test). Instead each point re-reduces its
// nc table cells in chiplet order — an O(nc) handful of adds that is
// noise next to the per-point floorplan — which preserves exact float
// parity while the Gray walk keeps every other per-point cost flat.

// ErrNoFastPath reports that a system cannot be compiled into a dense
// sweep plan and callers should fall back to the per-point reference
// path. Today this only covers multi-chiplet monolithic bases, whose
// sweeps are degenerate (every mixed-node combination fails validation).
var ErrNoFastPath = errors.New("explore: system has no compiled fast path")

// SweepStats counts the work a compiled plan performed; the CLI surfaces
// it under -progress next to the engine cache statistics.
type SweepStats struct {
	// Points is the number of design points evaluated from the table.
	Points uint64
	// BlockInits is the number of Gray walks started (one per worker
	// block): points whose full scratch state was built from scratch.
	BlockInits uint64
	// GraySteps is the number of incremental single-chiplet steps; all
	// other scratch state was reused from the previous point.
	GraySteps uint64
	// TableCells is the size of the precomputed die table.
	TableCells int
}

// CompiledPlan is a compiled node sweep: the dense per-(chiplet, node)
// invariant table plus everything point evaluation needs. Compile it
// once, run it any number of times; a plan is immutable after Compile
// and safe for concurrent use.
type CompiledPlan struct {
	base  *core.System
	db    *tech.DB
	nodes []int
	nc    int // chiplets in the base system
	r     int // candidate nodes (the mixed radix)

	combos int
	weight []int // weight[i] = r^(nc-1-i): chiplet 0 is the most significant digit

	// monolith selects the single-die evaluation path (single-chiplet or
	// monolithic bases): no packaging, no communication fabric.
	monolith bool

	// The dense tables. cells and dieUSD are indexed [chiplet][node];
	// monolith plans hold one row of merged-die cells. nreUSD and
	// commShare depend only on the node (and for commShare, the fixed
	// chiplet count), so they are single rows.
	cells     [][]core.DieCell
	dieUSD    [][]float64
	nreUSD    []float64
	commShare []float64 // nil for monolith plans

	asm   cost.Assembler
	hasOp bool
	names []string // chiplet names for packaging descriptors

	points, blockInits, graySteps atomic.Uint64
}

// Compile builds the sweep plan for evaluating base under every
// combination of the candidate nodes. It performs every node-independent
// computation and every per-(chiplet, node) sub-model call exactly once;
// errors any point of the sweep would hit (invalid base description,
// unsupported candidate node, sub-model domain violations, missing cost
// table entries) surface here instead of mid-sweep.
func Compile(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (*CompiledPlan, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("explore: no candidate nodes")
	}
	nc := len(base.Chiplets)
	combos, err := comboCount(len(nodes), nc)
	if err != nil {
		return nil, err
	}
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	if base.Monolithic && nc > 1 {
		return nil, ErrNoFastPath
	}
	for _, nm := range nodes {
		if !db.Has(nm) {
			return nil, fmt.Errorf("explore: candidate node %dnm is not in the technology database", nm)
		}
	}

	p := &CompiledPlan{
		base:     base,
		db:       db,
		nodes:    append([]int(nil), nodes...),
		nc:       nc,
		r:        len(nodes),
		combos:   combos,
		monolith: base.Monolithic || nc == 1,
		hasOp:    base.Operation != nil,
		nreUSD:   make([]float64, len(nodes)),
	}
	p.weight = make([]int, nc)
	w := 1
	for i := nc - 1; i >= 0; i-- {
		p.weight[i] = w
		w *= p.r
	}

	vol := base.Volume()
	rows := nc
	archName := base.Packaging.Arch.String()
	if p.monolith {
		rows = 1
		archName = "monolithic"
	}
	p.cells = make([][]core.DieCell, rows)
	p.dieUSD = make([][]float64, rows)
	for i := 0; i < rows; i++ {
		p.cells[i] = make([]core.DieCell, p.r)
		p.dieUSD[i] = make([]float64, p.r)
		for j, nm := range nodes {
			var cell core.DieCell
			if p.monolith {
				cell, err = base.MonolithCell(db, nm, nil)
			} else {
				cell, err = base.CellFor(db, base.Chiplets[i], nm, nil)
			}
			if err != nil {
				return nil, err
			}
			p.cells[i][j] = cell
			usd, err := cost.DieUSD(cell.Node, cell.AreaMM2, cp)
			if err != nil {
				return nil, err
			}
			p.dieUSD[i][j] = usd
		}
	}
	for j, nm := range nodes {
		usd, err := cost.NREUSDPerPart(db.MustGet(nm), vol, cp)
		if err != nil {
			return nil, err
		}
		p.nreUSD[j] = usd
	}
	if !p.monolith {
		p.commShare = make([]float64, p.r)
		for j, nm := range nodes {
			share, err := base.CommDesignShareKg(db, nm, nc, nil)
			if err != nil {
				return nil, err
			}
			p.commShare[j] = share
		}
		p.names = make([]string, nc)
		for i, c := range base.Chiplets {
			p.names[i] = c.Name
		}
	}
	// rows is the die count of every point: nc chiplets, or one merged
	// die for monolith plans — exactly what assembly charges per.
	p.asm, err = cost.NewAssembler(archName, rows, cp)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Combos returns the number of design points the plan enumerates.
func (p *CompiledPlan) Combos() int { return p.combos }

// Nodes returns the candidate node list the plan was compiled for.
func (p *CompiledPlan) Nodes() []int { return append([]int(nil), p.nodes...) }

// Stats snapshots the plan's work counters (cumulative across runs).
func (p *CompiledPlan) Stats() SweepStats {
	return SweepStats{
		Points:     p.points.Load(),
		BlockInits: p.blockInits.Load(),
		GraySteps:  p.graySteps.Load(),
		TableCells: len(p.cells) * p.r,
	}
}

// Run evaluates every point of the plan with default engine options.
func (p *CompiledPlan) Run() ([]Point, error) {
	return p.RunCtx(context.Background())
}

// RunCtx evaluates every point of the plan: workers walk contiguous
// Gray-code blocks of the combination sequence and write each point into
// its mixed-radix slot, so the output order (and every float in it) is
// identical to NodeSweepReference at any worker count.
func (p *CompiledPlan) RunCtx(ctx context.Context, opts ...engine.Option) ([]Point, error) {
	results := make([]Point, p.combos)
	err := engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		return p.runBlock(ctx, lo, hi, results, tick)
	}, opts...)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ParetoFrontCtx runs the plan and reduces the sweep to its Pareto front
// under the given objectives, returning the front and the total number
// of evaluated points.
func (p *CompiledPlan) ParetoFrontCtx(ctx context.Context, objectives []Metric, opts ...engine.Option) ([]Point, int, error) {
	points, err := p.RunCtx(ctx, opts...)
	if err != nil {
		return nil, 0, err
	}
	return ParetoFront(points, objectives...), len(points), nil
}

// blockScratch is one worker's reusable per-point state.
type blockScratch struct {
	digits []int // current Gray digits (indices into plan.nodes)
	next   []int // decode buffer for the following index
	pkgCh  []pkgcarbon.Chiplet
	est    *pkgcarbon.Estimator

	// Last-value memo for the operational term: its input (router power)
	// is constant across the whole sweep for RDL/EMIB/monolith/active-
	// interposer systems and piecewise-constant otherwise.
	opValid          bool
	lastPowerW, opKg float64
}

// runBlock walks the Gray-code segment [lo, hi) of the combination
// sequence.
func (p *CompiledPlan) runBlock(ctx context.Context, lo, hi int, results []Point, tick func()) error {
	sc := &blockScratch{
		digits: make([]int, p.nc),
		next:   make([]int, p.nc),
	}
	if !p.monolith {
		est, err := pkgcarbon.NewEstimator(p.base.Packaging)
		if err != nil {
			return err
		}
		sc.est = est
		sc.pkgCh = make([]pkgcarbon.Chiplet, p.nc)
	}

	p.grayDigits(lo, sc.digits)
	out := 0
	for i, d := range sc.digits {
		out += d * p.weight[i]
		if !p.monolith {
			cell := &p.cells[i][d]
			sc.pkgCh[i] = pkgcarbon.Chiplet{Name: p.names[i], AreaMM2: cell.AreaMM2, Node: cell.Node}
		}
	}
	p.blockInits.Add(1)
	steps := uint64(0)

	for k := lo; k < hi; k++ {
		if k > lo {
			// Successive Gray codes differ in exactly one digit: refresh
			// only that chiplet's scratch state and output weight.
			p.grayDigits(k, sc.next)
			for i := range sc.next {
				if d := sc.next[i]; d != sc.digits[i] {
					out += (d - sc.digits[i]) * p.weight[i]
					sc.digits[i] = d
					if !p.monolith {
						cell := &p.cells[i][d]
						sc.pkgCh[i].AreaMM2, sc.pkgCh[i].Node = cell.AreaMM2, cell.Node
					}
					break
				}
			}
			steps++
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		pt, err := p.evalPoint(sc)
		if err != nil {
			return err
		}
		results[out] = pt
		tick()
	}
	p.graySteps.Add(steps)
	p.points.Add(uint64(hi - lo))
	return nil
}

// evalPoint assembles one design point from the table. Per-chiplet
// contributions are reduced in chiplet order (see the file comment on
// why the totals are not running sums), whole-package terms come from
// the scratch estimator, and the only allocation is the point's Nodes
// slice.
func (p *CompiledPlan) evalPoint(sc *blockScratch) (Point, error) {
	var mfgKg, desKg, nreKg, diesUSD, nreUSD float64
	for i, d := range sc.digits {
		cell := &p.cells[i][d]
		mfgKg += cell.MfgKg
		desKg += cell.DesignKgAmortized
		nreKg += cell.NREKg
		diesUSD += p.dieUSD[i][d]
		nreUSD += p.nreUSD[d]
	}

	var hiKg, area, powerW float64
	assemblyYield := 1.0
	if p.monolith {
		area = p.cells[0][sc.digits[0]].AreaMM2
	} else {
		pkg, err := sc.est.Estimate(sc.pkgCh)
		if err != nil {
			return Point{}, err
		}
		desKg += p.commShare[sc.digits[0]]
		hiKg = pkg.TotalKg()
		area = pkg.PackageAreaMM2
		assemblyYield = pkg.AssemblyYield
		powerW = pkg.RouterTotalPowerW
	}

	var opKg float64
	if p.hasOp {
		if sc.opValid && sc.lastPowerW == powerW {
			opKg = sc.opKg
		} else {
			v, err := p.base.Operation.LifetimeKg(powerW)
			if err != nil {
				return Point{}, err
			}
			sc.lastPowerW, sc.opKg, sc.opValid = powerW, v, true
			opKg = v
		}
	}

	asmUSD, err := p.asm.USD(area, assemblyYield)
	if err != nil {
		return Point{}, err
	}

	picked := make([]int, p.nc)
	for i, d := range sc.digits {
		picked[i] = p.nodes[d]
	}
	embodied := mfgKg + desKg + hiKg + nreKg
	return Point{
		Nodes:          picked,
		EmbodiedKg:     embodied,
		TotalKg:        embodied + opKg,
		CostUSD:        diesUSD + asmUSD + nreUSD,
		PackageAreaMM2: area,
	}, nil
}

// grayDigits writes the reflected mixed-radix Gray code of sequence
// index k into digits (most significant digit first, uniform radix r).
// Digit i runs its 0..r-1 sweep forward or reflected depending on the
// parity of the standard mixed-radix value of the digits above it, which
// makes consecutive codes differ in exactly one digit by ±1 while the
// map from k to codes stays a bijection onto the full factorial space.
func (p *CompiledPlan) grayDigits(k int, digits []int) {
	b := 0 // standard value of the more significant digits (parity is what matters)
	for i := 0; i < p.nc; i++ {
		a := k / p.weight[i] % p.r
		if b%2 == 0 {
			digits[i] = a
		} else {
			digits[i] = p.r - 1 - a
		}
		b = b*p.r + a
	}
}

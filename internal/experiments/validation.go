package experiments

import (
	"ecochip/internal/report"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func init() {
	register("ext-validation", ExtValidation)
}

// iPhone14TotalKg is the whole-product lifecycle CFP Apple reports for
// the iPhone 14 (Section VII sanity check; the paper compares its A15
// number against this).
const iPhone14TotalKg = 61.0

// ExtValidation reproduces the Section VII sanity check: the A15
// processor's CFP should be a modest fraction (the paper lands at ~16%)
// of the whole iPhone's reported footprint, with an ~80/20
// embodied/operational split.
func ExtValidation(db *tech.DB) (*report.Table, error) {
	t := report.New("ext-validation",
		"Section VII sanity check: A15 CFP vs Apple's whole-iPhone report",
		"quantity", "value")
	rep, err := testcases.A15(db, 7, 14, 10, false).Evaluate(db)
	if err != nil {
		return nil, err
	}
	t.AddRow("a15_ctot_kg", report.F(rep.TotalKg()))
	t.AddRow("iphone14_reported_kg", report.F(iPhone14TotalKg))
	t.AddRow("a15_share_of_phone", report.F(rep.TotalKg()/iPhone14TotalKg))
	t.AddRow("a15_embodied_share", report.F(rep.EmbodiedKg()/rep.TotalKg()))
	t.AddRow("a15_operational_share", report.F(rep.OperationalKg/rep.TotalKg()))
	return t, nil
}

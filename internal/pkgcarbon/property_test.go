package pkgcarbon

import (
	"testing"
	"testing/quick"

	"ecochip/internal/tech"
)

// Property: every architecture produces positive package carbon, a valid
// assembly yield and a package at least as large as the silicon it
// hosts, for arbitrary chiplet sets.
func TestEstimatePropertyRandomSets(t *testing.T) {
	db := tech.Default()
	sizes := db.Sizes()
	f := func(raw []uint16, archRaw uint8) bool {
		if len(raw) < 2 || len(raw) > 10 {
			return true
		}
		arch := Architectures[int(archRaw)%len(Architectures)]
		chips := make([]Chiplet, len(raw))
		var silicon float64
		for i, r := range raw {
			area := float64(r%400) + 1
			chips[i] = Chiplet{
				Name:    string(rune('a' + i)),
				AreaMM2: area,
				Node:    db.MustGet(sizes[int(r)%len(sizes)]),
			}
			silicon += area
		}
		res, err := Estimate(chips, DefaultParams(arch))
		if err != nil {
			return false
		}
		if res.PackageKg <= 0 || res.RoutingKg <= 0 {
			return false
		}
		if res.AssemblyYield <= 0 || res.AssemblyYield > 1 {
			return false
		}
		if arch == ThreeD {
			// Footprint is the largest tier.
			return res.PackageAreaMM2 <= silicon
		}
		return res.PackageAreaMM2 >= silicon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
